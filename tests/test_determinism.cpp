// Run-to-run determinism. The library promises: generators are pure
// functions of (params, seed) independent of thread count; the CSR builder
// is deterministic including duplicate-weight resolution; and primitives
// with deterministic specifications (depths, distances, labels, colors,
// core numbers, MST weight) return identical results across runs and
// across pools of different sizes.
#include <gtest/gtest.h>

#include "common/env.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr BuildFixture(par::ThreadPool& pool) {
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  auto coo = GenerateRmat(p, pool);
  graph::AttachRandomWeights(coo, 1, 64);
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts, pool);
}

TEST(DeterminismTest, GeneratorsIgnoreThreadCount) {
  par::ThreadPool one(1), many(16);
  graph::RmatParams p;
  p.scale = 12;
  const auto a = GenerateRmat(p, one);
  const auto b = GenerateRmat(p, many);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);

  graph::RggParams rp;
  rp.scale = 11;
  const auto ra = GenerateRgg(rp, one);
  const auto rb = GenerateRgg(rp, many);
  EXPECT_EQ(ra.src, rb.src);
  EXPECT_EQ(ra.dst, rb.dst);
}

TEST(DeterminismTest, CsrBuildIgnoresThreadCount) {
  par::ThreadPool one(1), many(16);
  const auto a = BuildFixture(one);
  const auto b = BuildFixture(many);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.col_indices().size(); ++i) {
    ASSERT_EQ(a.col_indices()[i], b.col_indices()[i]);
    ASSERT_EQ(a.weights()[i], b.weights()[i]);
  }
  for (vid_t v = 0; v <= a.num_vertices(); ++v) {
    ASSERT_EQ(a.row_offsets()[v], b.row_offsets()[v]);
  }
}

TEST(DeterminismTest, BfsDepthsStableAcrossRunsAndPools) {
  par::ThreadPool small(2), large(16);
  const auto g = BuildFixture(large);
  BfsOptions a;
  a.pool = &small;
  BfsOptions b;
  b.pool = &large;
  b.direction = core::Direction::kOptimizing;
  const auto ra = Bfs(g, 3, a);
  const auto rb = Bfs(g, 3, b);
  const auto rc = Bfs(g, 3, b);
  EXPECT_EQ(ra.depth, rb.depth);
  EXPECT_EQ(rb.depth, rc.depth);
}

TEST(DeterminismTest, SsspDistancesStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  SsspOptions opts;
  opts.pool = &pool;
  const auto a = Sssp(g, 1, opts);
  const auto b = Sssp(g, 1, opts);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(DeterminismTest, CcLabelsStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  CcOptions opts;
  opts.pool = &pool;
  const auto a = Cc(g, opts);
  const auto b = Cc(g, opts);
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.num_components, b.num_components);
}

TEST(DeterminismTest, ColoringMisKcoreStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  ColoringOptions copts;
  copts.pool = &pool;
  EXPECT_EQ(GraphColoring(g, copts).color, GraphColoring(g, copts).color);
  MisOptions mopts;
  mopts.pool = &pool;
  EXPECT_EQ(MaximalIndependentSet(g, mopts).in_set,
            MaximalIndependentSet(g, mopts).in_set);
  KCoreOptions kopts;
  kopts.pool = &pool;
  EXPECT_EQ(KCore(g, kopts).core, KCore(g, kopts).core);
}

TEST(DeterminismTest, MstWeightStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  MstOptions opts;
  opts.pool = &pool;
  const auto a = Mst(g, opts);
  const auto b = Mst(g, opts);
  // The (weight, edge-id) total order makes the chosen forest itself
  // unique, not just its weight.
  EXPECT_EQ(a.tree_edges.size(), b.tree_edges.size());
  EXPECT_DOUBLE_EQ(a.total_weight, b.total_weight);
}

/// The workspace arena reuses buffers across operator calls; for a fixed
/// grain the emitted frontier (contents *and* order) must not depend on
/// whether the buffers are warm or cold, across every load-balance
/// strategy and a sweep of GUNROCK_TEST_SEED-derived graphs.
TEST(DeterminismTest, WorkspaceReuseKeepsFrontierOrder) {
  struct PassFunctor {
    struct P {};
    static bool CondEdge(vid_t, vid_t d, eid_t, P&) { return d % 2 == 0; }
    static void ApplyEdge(vid_t, vid_t, eid_t, P&) {}
  };
  struct PassVertex {
    struct P {};
    static bool CondVertex(vid_t v, P&) { return v % 3 != 0; }
    static void ApplyVertex(vid_t, P&) {}
  };
  par::ThreadPool pool(8);
  const std::uint64_t base_seed = test::TestSeed();
  for (std::uint64_t delta = 0; delta < 3; ++delta) {
    graph::RmatParams p;
    p.scale = 10;
    p.edge_factor = 8;
    p.seed = base_seed + delta;
    graph::BuildOptions bopts;
    bopts.symmetrize = true;
    const auto g = graph::BuildCsr(GenerateRmat(p, pool), bopts);
    std::vector<vid_t> frontier;
    for (vid_t v = 0; v < g.num_vertices(); v += 3) frontier.push_back(v);

    for (const auto lb :
         {core::LoadBalance::kThreadMapped, core::LoadBalance::kTwc,
          core::LoadBalance::kEqualWork}) {
      core::Workspace warm;
      core::AdvanceConfig cfg;
      cfg.lb = lb;
      cfg.workspace = &warm;
      core::FilterConfig fcfg;
      fcfg.history_hash = true;
      fcfg.workspace = &warm;
      PassFunctor::P prob;
      PassVertex::P vprob;

      auto run = [&](const core::AdvanceConfig& acfg,
                     const core::FilterConfig& ffcfg) {
        std::vector<vid_t> advanced, filtered;
        core::AdvancePush<PassFunctor>(pool, g, frontier, &advanced, prob,
                                       acfg);
        core::FilterVertex<PassVertex>(pool, advanced, &filtered, vprob,
                                       ffcfg);
        return filtered;
      };
      const auto cold = run(cfg, fcfg);       // fills the arena
      const auto warm1 = run(cfg, fcfg);      // fully reused buffers
      const auto warm2 = run(cfg, fcfg);
      core::AdvanceConfig fresh_cfg = cfg;
      core::FilterConfig fresh_fcfg = fcfg;
      fresh_cfg.workspace = nullptr;
      fresh_fcfg.workspace = nullptr;
      const auto fresh = run(fresh_cfg, fresh_fcfg);
      EXPECT_EQ(cold, warm1) << "lb=" << ToString(lb) << " seed delta "
                             << delta;
      EXPECT_EQ(warm1, warm2) << "lb=" << ToString(lb);
      EXPECT_EQ(warm1, fresh) << "lb=" << ToString(lb);
    }
  }
}

TEST(DeterminismTest, PagerankStableWithinTolerance) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  PagerankOptions opts;
  opts.pool = &pool;
  const auto a = Pagerank(g, opts);
  const auto b = Pagerank(g, opts);
  // Float atomics make bit-exactness too strong; agreement must still be
  // far tighter than the convergence tolerance.
  for (std::size_t v = 0; v < a.rank.size(); ++v) {
    EXPECT_NEAR(a.rank[v], b.rank[v], 1e-12) << "vertex " << v;
  }
}

}  // namespace
}  // namespace gunrock
