// Run-to-run determinism. The library promises: generators are pure
// functions of (params, seed) independent of thread count; the CSR builder
// is deterministic including duplicate-weight resolution; and primitives
// with deterministic specifications (depths, distances, labels, colors,
// core numbers, MST weight) return identical results across runs and
// across pools of different sizes.
#include <gtest/gtest.h>

#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr BuildFixture(par::ThreadPool& pool) {
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  auto coo = GenerateRmat(p, pool);
  graph::AttachRandomWeights(coo, 1, 64);
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts, pool);
}

TEST(DeterminismTest, GeneratorsIgnoreThreadCount) {
  par::ThreadPool one(1), many(16);
  graph::RmatParams p;
  p.scale = 12;
  const auto a = GenerateRmat(p, one);
  const auto b = GenerateRmat(p, many);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);

  graph::RggParams rp;
  rp.scale = 11;
  const auto ra = GenerateRgg(rp, one);
  const auto rb = GenerateRgg(rp, many);
  EXPECT_EQ(ra.src, rb.src);
  EXPECT_EQ(ra.dst, rb.dst);
}

TEST(DeterminismTest, CsrBuildIgnoresThreadCount) {
  par::ThreadPool one(1), many(16);
  const auto a = BuildFixture(one);
  const auto b = BuildFixture(many);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.col_indices().size(); ++i) {
    ASSERT_EQ(a.col_indices()[i], b.col_indices()[i]);
    ASSERT_EQ(a.weights()[i], b.weights()[i]);
  }
  for (vid_t v = 0; v <= a.num_vertices(); ++v) {
    ASSERT_EQ(a.row_offsets()[v], b.row_offsets()[v]);
  }
}

TEST(DeterminismTest, BfsDepthsStableAcrossRunsAndPools) {
  par::ThreadPool small(2), large(16);
  const auto g = BuildFixture(large);
  BfsOptions a;
  a.pool = &small;
  BfsOptions b;
  b.pool = &large;
  b.direction = core::Direction::kOptimizing;
  const auto ra = Bfs(g, 3, a);
  const auto rb = Bfs(g, 3, b);
  const auto rc = Bfs(g, 3, b);
  EXPECT_EQ(ra.depth, rb.depth);
  EXPECT_EQ(rb.depth, rc.depth);
}

TEST(DeterminismTest, SsspDistancesStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  SsspOptions opts;
  opts.pool = &pool;
  const auto a = Sssp(g, 1, opts);
  const auto b = Sssp(g, 1, opts);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(DeterminismTest, CcLabelsStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  CcOptions opts;
  opts.pool = &pool;
  const auto a = Cc(g, opts);
  const auto b = Cc(g, opts);
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.num_components, b.num_components);
}

TEST(DeterminismTest, ColoringMisKcoreStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  ColoringOptions copts;
  copts.pool = &pool;
  EXPECT_EQ(GraphColoring(g, copts).color, GraphColoring(g, copts).color);
  MisOptions mopts;
  mopts.pool = &pool;
  EXPECT_EQ(MaximalIndependentSet(g, mopts).in_set,
            MaximalIndependentSet(g, mopts).in_set);
  KCoreOptions kopts;
  kopts.pool = &pool;
  EXPECT_EQ(KCore(g, kopts).core, KCore(g, kopts).core);
}

TEST(DeterminismTest, MstWeightStable) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  MstOptions opts;
  opts.pool = &pool;
  const auto a = Mst(g, opts);
  const auto b = Mst(g, opts);
  // The (weight, edge-id) total order makes the chosen forest itself
  // unique, not just its weight.
  EXPECT_EQ(a.tree_edges.size(), b.tree_edges.size());
  EXPECT_DOUBLE_EQ(a.total_weight, b.total_weight);
}

TEST(DeterminismTest, PagerankStableWithinTolerance) {
  par::ThreadPool pool(16);
  const auto g = BuildFixture(pool);
  PagerankOptions opts;
  opts.pool = &pool;
  const auto a = Pagerank(g, opts);
  const auto b = Pagerank(g, opts);
  // Float atomics make bit-exactness too strong; agreement must still be
  // far tighter than the convergence tolerance.
  for (std::size_t v = 0; v < a.rank.size(); ++v) {
    EXPECT_NEAR(a.rank[v], b.rank[v], 1e-12) << "vertex " << v;
  }
}

}  // namespace
}  // namespace gunrock
