// HITS / SALSA / personalized PageRank: oracle comparisons against small
// dense linear-algebra references and structural properties on bipartite
// who-to-follow graphs (paper Section 5.5).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gunrock.hpp"

namespace gunrock {
namespace {

// Dense reference HITS: power iteration on A^T h / A a with L1 scaling.
void ReferenceHits(const graph::Csr& g, int iters,
                   std::vector<double>* hub, std::vector<double>* auth) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  hub->assign(n, 1.0 / static_cast<double>(n));
  auth->assign(n, 0.0);
  auto pool = &par::ThreadPool::Global();
  (void)pool;
  const auto srcs = g.edge_sources(par::ThreadPool::Global());
  for (int it = 0; it < iters; ++it) {
    std::fill(auth->begin(), auth->end(), 0.0);
    for (eid_t e = 0; e < g.num_edges(); ++e) {
      (*auth)[g.col_indices()[e]] += (*hub)[srcs[e]];
    }
    double s = std::accumulate(auth->begin(), auth->end(), 0.0);
    if (s > 0) {
      for (auto& x : *auth) x /= s;
    }
    std::fill(hub->begin(), hub->end(), 0.0);
    for (eid_t e = 0; e < g.num_edges(); ++e) {
      (*hub)[srcs[e]] += (*auth)[g.col_indices()[e]];
    }
    s = std::accumulate(hub->begin(), hub->end(), 0.0);
    if (s > 0) {
      for (auto& x : *hub) x /= s;
    }
  }
}

graph::Csr Bipartite(int users, int items, int k) {
  graph::BipartiteParams p;
  p.num_users = users;
  p.num_items = items;
  p.edges_per_user = k;
  return graph::BuildCsr(
      GenerateBipartite(p, par::ThreadPool::Global()));
}

TEST(HitsTest, MatchesDenseReference) {
  const auto g = Bipartite(256, 128, 8);
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  HitsOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;  // run all 20 iterations like the reference
  const auto got = Hits(g, rg, opts);

  std::vector<double> hub, auth;
  ReferenceHits(g, 20, &hub, &auth);
  for (std::size_t v = 0; v < hub.size(); ++v) {
    EXPECT_NEAR(got.hub[v], hub[v], 1e-9) << "hub " << v;
    EXPECT_NEAR(got.authority[v], auth[v], 1e-9) << "auth " << v;
  }
}

TEST(HitsTest, BipartiteRolesSeparate) {
  const auto g = Bipartite(128, 64, 6);
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  const auto got = Hits(g, rg);
  // Users (sources) have zero authority; items (sinks) zero hub score.
  for (vid_t u = 0; u < 128; ++u) {
    EXPECT_NEAR(got.authority[u], 0.0, 1e-12) << "user " << u;
  }
  for (vid_t i = 128; i < 192; ++i) {
    EXPECT_NEAR(got.hub[i], 0.0, 1e-12) << "item " << i;
  }
  const double auth_sum = std::accumulate(got.authority.begin(),
                                          got.authority.end(), 0.0);
  EXPECT_NEAR(auth_sum, 1.0, 1e-9);
}

TEST(HitsTest, PopularItemsWinAuthority) {
  // Skewed bipartite graph: low-rank items collect most edges.
  const auto g = Bipartite(512, 256, 8);
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  const auto got = Hits(g, rg);
  // The most popular item (highest in-degree) should be near the top.
  vid_t best_deg_item = 512;
  for (vid_t i = 512; i < 768; ++i) {
    if (rg.degree(i) > rg.degree(best_deg_item)) best_deg_item = i;
  }
  vid_t best_auth_item = 512;
  for (vid_t i = 512; i < 768; ++i) {
    if (got.authority[i] > got.authority[best_auth_item]) {
      best_auth_item = i;
    }
  }
  EXPECT_GT(got.authority[best_auth_item], 0.0);
  EXPECT_GE(rg.degree(best_auth_item),
            rg.degree(best_deg_item) / 2);  // top-auth is a popular item
}

TEST(SalsaTest, ScoresAreDistributions) {
  const auto g = Bipartite(256, 128, 8);
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  const auto got = Salsa(g, rg);
  EXPECT_NEAR(std::accumulate(got.authority.begin(), got.authority.end(),
                              0.0),
              1.0, 1e-9);
  EXPECT_NEAR(std::accumulate(got.hub.begin(), got.hub.end(), 0.0), 1.0,
              1e-9);
  for (const double x : got.authority) EXPECT_GE(x, 0.0);
  for (const double x : got.hub) EXPECT_GE(x, 0.0);
  EXPECT_GT(got.iterations, 0);
}

TEST(SalsaTest, UniformBipartiteIsUniform) {
  // Complete bipartite 4x4: SALSA authority must be uniform over items.
  graph::Coo coo;
  coo.num_vertices = 8;
  for (vid_t u = 0; u < 4; ++u) {
    for (vid_t i = 4; i < 8; ++i) coo.PushEdge(u, i);
  }
  const auto g = graph::BuildCsr(coo);
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  const auto got = Salsa(g, rg);
  for (vid_t i = 4; i < 8; ++i) {
    EXPECT_NEAR(got.authority[i], 0.25, 1e-9);
  }
  for (vid_t u = 0; u < 4; ++u) {
    EXPECT_NEAR(got.hub[u], 0.25, 1e-9);
  }
}

TEST(PprTest, SingleSeedMatchesUniformPagerankOnVertexTransitiveGraph) {
  // On a cycle, PPR from any seed has the seed ranked highest and decays
  // symmetrically around it.
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  const auto g = graph::BuildCsr(graph::MakeCycle(33), bopts);
  const vid_t seeds[] = {7};
  const auto got = PersonalizedPagerank(g, seeds);
  for (vid_t v = 0; v < 33; ++v) {
    if (v != 7) {
      EXPECT_GT(got.rank[7], got.rank[v]);
    }
  }
  // Symmetry: rank(7+k) == rank(7-k).
  for (int k = 1; k <= 16; ++k) {
    const vid_t a = static_cast<vid_t>((7 + k) % 33);
    const vid_t b = static_cast<vid_t>((7 - k + 33) % 33);
    EXPECT_NEAR(got.rank[a], got.rank[b], 1e-10) << "offset " << k;
  }
  EXPECT_NEAR(std::accumulate(got.rank.begin(), got.rank.end(), 0.0), 1.0,
              1e-8);
}

TEST(PprTest, AllVerticesAsSeedsEqualsGlobalPagerank) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  const auto g = graph::BuildCsr(
      GenerateRmat(p, par::ThreadPool::Global()), bopts);
  std::vector<vid_t> seeds(g.num_vertices());
  std::iota(seeds.begin(), seeds.end(), 0);
  const auto ppr = PersonalizedPagerank(g, seeds);
  const auto pr = serial::Pagerank(g);
  for (std::size_t v = 0; v < pr.rank.size(); ++v) {
    EXPECT_NEAR(ppr.rank[v], pr.rank[v], 1e-6) << "vertex " << v;
  }
}

TEST(PprTest, MassConcentratesNearSeeds) {
  const auto g = Bipartite(128, 64, 4);
  const vid_t seeds[] = {0, 1};
  const auto got = PersonalizedPagerank(g, seeds);
  // Seeds hold the teleport mass; any non-seed user with no in-edges
  // should have rank 0 (nothing flows to users in a user->item graph).
  EXPECT_GT(got.rank[0], 0.0);
  EXPECT_GT(got.rank[1], 0.0);
  for (vid_t u = 2; u < 128; ++u) {
    EXPECT_NEAR(got.rank[u], 0.0, 1e-12) << "user " << u;
  }
  EXPECT_THROW(
      PersonalizedPagerank(g, std::span<const vid_t>{}), Error);
}

}  // namespace
}  // namespace gunrock
