// gunrockd over a loopback socket: wire round-trips bit-identical to
// direct engine calls, finish-order streaming, per-request error
// responses for malformed input, graceful drain (in-flight completes,
// new connects refused), weighted fair-share admission, and the
// operator endpoints (ping/graphs/stats, "/stats").
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "gunrock.hpp"
#include "serve/config.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "serve/listener.hpp"
#include "serve/protocol.hpp"

namespace gunrock {
namespace {

using serve::Daemon;
using serve::DaemonConfig;
using serve::Json;

/// Scale-free weighted fixture, varied by the seed sweep like the engine
/// suite's — the daemon serves the same pipeline the engine runs on.
graph::Csr MakeGraph(int scale = 9, int edge_factor = 8) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = 4000 + test::TestSeed();
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

/// A started daemon on an ephemeral loopback port serving `g` as the
/// (default) graph "g".
std::unique_ptr<Daemon> MakeDaemon(graph::Csr g, unsigned inflight = 2) {
  DaemonConfig config;
  config.inflight = inflight;
  auto daemon = std::make_unique<Daemon>(std::move(config));
  daemon->AddGraph("g", std::move(g));
  std::string error;
  EXPECT_TRUE(daemon->Start(&error)) << error;
  return daemon;
}

/// Same, but under an arbitrary config (hardening knobs and the like).
std::unique_ptr<Daemon> MakeDaemonWith(graph::Csr g, DaemonConfig config) {
  auto daemon = std::make_unique<Daemon>(std::move(config));
  daemon->AddGraph("g", std::move(g));
  std::string error;
  EXPECT_TRUE(daemon->Start(&error)) << error;
  return daemon;
}

/// Line-protocol client: connect, send one JSON (or raw) line, parse one
/// JSON response line.
class Client {
 public:
  explicit Client(int port) {
    std::string error;
    socket_ = serve::ConnectTcp("127.0.0.1", port, &error);
    EXPECT_TRUE(socket_.valid()) << error;
  }

  void Send(const Json& request) { SendRaw(request.Dump()); }
  void SendRaw(const std::string& line) {
    ASSERT_TRUE(socket_.WriteAll(line + "\n"));
  }

  /// Next response line, parsed; nullopt on EOF.
  std::optional<Json> Read() {
    const std::optional<std::string> line = socket_.ReadLine();
    if (!line) return std::nullopt;
    std::string error;
    std::optional<Json> parsed = Json::Parse(*line, &error);
    EXPECT_TRUE(parsed.has_value()) << error << " in: " << *line;
    return parsed;
  }

  serve::Socket& socket() { return socket_; }

 private:
  serve::Socket socket_;
};

std::string Tag(const Json& response) {
  const Json* tag = response.Find("tag");
  return tag && tag->is_string() ? tag->as_string() : std::string();
}

std::string Field(const Json& response, const std::string& key) {
  const Json* v = response.Find(key);
  return v && v->is_string() ? v->as_string() : std::string();
}

Json QueryLine(const char* kind, const char* tag,
               Json::Object extra = {}) {
  Json::Object o;
  o["op"] = Json("query");
  o["kind"] = Json(kind);
  o["tag"] = Json(tag);
  for (auto& [k, v] : extra) o[k] = std::move(v);
  return Json(std::move(o));
}

// --- round-trip bit-identity ------------------------------------------------

// A result decoded from the wire equals the same request run directly on
// the daemon's engine, through the same deterministic encoder — i.e. the
// socket, codec and daemon plumbing add nothing and lose nothing. The
// engine side of this (concurrent == direct calls) is test_query_engine's
// job; here we pin the serving stack on top of it.
TEST(DaemonTest, RoundTripBitIdenticalToDirectEngineCalls) {
  auto daemon = MakeDaemon(MakeGraph());
  const vid_t source = 3;

  engine::BfsQuery bfs;
  bfs.source = source;
  engine::SsspQuery sssp;
  sssp.source = source;
  engine::PagerankQuery pr;
  pr.opts.pull = true;  // gather-reduce: deterministic rank accumulation
  pr.opts.max_iterations = 30;
  engine::PagerankQuery pr_spmv = pr;
  pr_spmv.opts.backend = core::SpmvBackend::kSpmv;

  struct Case {
    const char* name;
    Json wire;
    engine::QueryRequest direct;
  };
  Json::Object pr_opts_obj;
  pr_opts_obj["pull"] = Json(true);
  pr_opts_obj["max_iterations"] = Json(30);
  Json::Object pr_extra;
  pr_extra["opts"] = Json(std::move(pr_opts_obj));
  Json::Object pr_spmv_opts;
  pr_spmv_opts["pull"] = Json(true);
  pr_spmv_opts["max_iterations"] = Json(30);
  pr_spmv_opts["backend"] = Json("spmv");
  Json::Object pr_spmv_extra;
  pr_spmv_extra["opts"] = Json(std::move(pr_spmv_opts));
  Json::Object src_extra;
  src_extra["source"] = Json(source);
  const Case cases[] = {
      {"bfs", QueryLine("bfs", "t", src_extra), bfs},
      {"sssp", QueryLine("sssp", "t", src_extra), sssp},
      {"pagerank", QueryLine("pagerank", "t", std::move(pr_extra)), pr},
      {"pagerank", QueryLine("pagerank", "t2", std::move(pr_spmv_extra)),
       pr_spmv},
  };

  Client client(daemon->port());
  for (const Case& c : cases) {
    client.Send(c.wire);
    const std::optional<Json> response = client.Read();
    ASSERT_TRUE(response) << c.name;
    EXPECT_EQ(Field(*response, "op"), "result") << c.name;
    EXPECT_EQ(Field(*response, "kind"), c.name);
    EXPECT_EQ(Field(*response, "status"), "done") << c.name;

    const engine::QueryResponse direct =
        daemon->engine().Submit("g", c.direct).Wait();
    ASSERT_EQ(direct.status, engine::QueryStatus::kDone) << c.name;
    const Json expected =
        serve::EncodeResultPayload(direct.result, /*include_values=*/true);

    const Json* wire_result = response->Find("result");
    ASSERT_NE(wire_result, nullptr) << c.name;
    EXPECT_EQ(wire_result->Dump(), expected.Dump()) << c.name;
  }
}

// The matrix wire op round-trips the full table (and extracted paths)
// bit-identically to a direct engine submit of the same query — both go
// through Submit, so both get the same wave stamp and backend policy.
TEST(DaemonTest, MatrixRoundTripMatchesDirectEngineRun) {
  auto daemon = MakeDaemon(MakeGraph());

  engine::MatrixQuery frontier;
  frontier.sources = {3, 5, 7};
  frontier.targets = {0, 1, 2, 9};
  frontier.paths = {{3, 0}, {7, 9}};
  engine::MatrixQuery spmv = frontier;
  spmv.opts.backend = MatrixBackend::kSpmv;

  Json::Array sources, targets, paths;
  for (const vid_t s : frontier.sources) sources.push_back(Json(s));
  for (const vid_t t : frontier.targets) targets.push_back(Json(t));
  for (const auto& [s, t] : frontier.paths) {
    Json::Array pair;
    pair.push_back(Json(s));
    pair.push_back(Json(t));
    paths.push_back(Json(std::move(pair)));
  }
  Json::Object extra;
  extra["sources"] = Json(sources);
  extra["targets"] = Json(targets);
  extra["paths"] = Json(paths);
  Json::Object spmv_opts;
  spmv_opts["backend"] = Json("spmv");
  Json::Object spmv_extra = extra;
  spmv_extra["opts"] = Json(std::move(spmv_opts));

  const struct {
    const char* name;
    Json wire;
    engine::QueryRequest direct;
  } cases[] = {
      {"frontier", QueryLine("matrix", "m1", std::move(extra)), frontier},
      {"spmv", QueryLine("matrix", "m2", std::move(spmv_extra)), spmv},
  };

  Client client(daemon->port());
  for (const auto& c : cases) {
    client.Send(c.wire);
    const std::optional<Json> response = client.Read();
    ASSERT_TRUE(response) << c.name;
    EXPECT_EQ(Field(*response, "op"), "result") << c.name;
    EXPECT_EQ(Field(*response, "kind"), "matrix") << c.name;
    EXPECT_EQ(Field(*response, "status"), "done") << c.name;

    const engine::QueryResponse direct =
        daemon->engine().Submit("g", c.direct).Wait();
    ASSERT_EQ(direct.status, engine::QueryStatus::kDone) << c.name;
    const Json expected =
        serve::EncodeResultPayload(direct.result, /*include_values=*/true);

    const Json* wire_result = response->Find("result");
    ASSERT_NE(wire_result, nullptr) << c.name;
    EXPECT_EQ(wire_result->Dump(), expected.Dump()) << c.name;

    // The table is the payload: shape fields and rows must be present.
    ASSERT_NE(wire_result->Find("table"), nullptr) << c.name;
    EXPECT_EQ(wire_result->Find("num_sources")->as_number(), 3) << c.name;
    EXPECT_EQ(wire_result->Find("num_targets")->as_number(), 4) << c.name;
  }
}

// --- finish-order streaming -------------------------------------------------

// Responses arrive in finish order, not submission order: a BFS sent
// after a long-running PageRank comes back first, correlated by tag.
TEST(DaemonTest, ResponsesStreamInFinishOrder) {
  auto daemon = MakeDaemon(MakeGraph(), /*inflight=*/2);
  Client client(daemon->port());

  // Slow PageRank (zero tolerance: exact-convergence is out of reach, so
  // it runs its whole iteration budget), bounded by its own deadline so
  // the test ends either way; the BFS overtakes it.
  Json::Object slow_opts;
  slow_opts["tolerance"] = Json(0.0);
  slow_opts["max_iterations"] = Json(100000);
  Json::Object slow_extra;
  slow_extra["opts"] = Json(std::move(slow_opts));
  slow_extra["deadline_ms"] = Json(400);
  slow_extra["values"] = Json(false);
  Json::Object fast_extra;
  fast_extra["source"] = Json(0);
  fast_extra["values"] = Json(false);

  client.Send(QueryLine("pagerank", "slow", std::move(slow_extra)));
  client.Send(QueryLine("bfs", "fast", std::move(fast_extra)));

  const std::optional<Json> first = client.Read();
  ASSERT_TRUE(first);
  EXPECT_EQ(Tag(*first), "fast");
  EXPECT_EQ(Field(*first, "status"), "done");

  const std::optional<Json> second = client.Read();
  ASSERT_TRUE(second);
  EXPECT_EQ(Tag(*second), "slow");
  // Usually the deadline fires; on a very fast machine the budget might
  // run out first — finish order is the claim here, not which bound hit.
  const std::string status = Field(*second, "status");
  EXPECT_TRUE(status == "deadline-exceeded" || status == "done") << status;
}

// --- malformed requests -----------------------------------------------------

// Every malformed line gets its own {"op":"error"} response naming the
// problem; the connection survives and keeps serving.
TEST(DaemonTest, MalformedRequestsGetPerRequestErrors) {
  auto daemon = MakeDaemon(MakeGraph());
  Client client(daemon->port());

  const struct {
    const char* name;
    const char* line;
    const char* expect;  // substring of the "error" field
  } cases[] = {
      {"not json", "this is not json", "bad JSON"},
      {"unknown op", R"({"op":"frob"})", "frob"},
      {"unknown kind", R"({"op":"query","kind":"zork"})", "zork"},
      {"missing source", R"({"op":"query","kind":"bfs"})", "source"},
      {"garbage source",
       R"({"op":"query","kind":"bfs","source":"abc"})", "source"},
      {"fractional source",
       R"({"op":"query","kind":"bfs","source":2.5})", "source"},
      {"unknown opt key",
       R"({"op":"query","kind":"bfs","source":1,"opts":{"frobnicate":1}})",
       "frobnicate"},
      {"bad backend value",
       R"({"op":"query","kind":"pagerank","opts":{"backend":"gpu"}})",
       "'backend' must be one of"},
      {"backend on wrong kind",
       R"({"op":"query","kind":"bfs","source":1,"opts":{"backend":"spmv"}})",
       "backend"},
      {"unknown top-level key",
       R"({"op":"query","kind":"bfs","source":1,"bogus":1})", "bogus"},
      {"source on sourceless kind",
       R"({"op":"query","kind":"cc","source":1})", "source"},
      {"unknown graph",
       R"({"op":"query","kind":"bfs","source":1,"graph":"nope"})", "nope"},
  };
  for (const auto& c : cases) {
    client.SendRaw(c.line);
    const std::optional<Json> response = client.Read();
    ASSERT_TRUE(response) << c.name;
    EXPECT_EQ(Field(*response, "op"), "error") << c.name;
    const std::string error = Field(*response, "error");
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << c.name << ": missing '" << c.expect << "' in: " << error;
  }

  // The connection still works after ten rejected requests.
  Json::Object extra;
  extra["source"] = Json(0);
  extra["values"] = Json(false);
  client.Send(QueryLine("bfs", "alive", std::move(extra)));
  const std::optional<Json> ok = client.Read();
  ASSERT_TRUE(ok);
  EXPECT_EQ(Field(*ok, "status"), "done");
}

// A request line that crosses max_line before any newline gets one error
// response naming the cap, then a clean close — the daemon never buffers
// an unbounded line — and a concurrent well-behaved connection is
// untouched.
TEST(DaemonTest, OversizedLineGetsOneErrorThenCleanClose) {
  DaemonConfig config;
  config.max_line = 256;
  auto daemon = MakeDaemonWith(MakeGraph(), config);

  Client bystander(daemon->port());
  Client fat(daemon->port());
  // 4 KB with no '\n': crosses the cap long before a line boundary.
  ASSERT_TRUE(fat.socket().WriteAll(std::string(4096, 'a')));
  const std::optional<Json> response = fat.Read();
  ASSERT_TRUE(response) << "closed without the error response";
  EXPECT_EQ(Field(*response, "op"), "error");
  EXPECT_NE(Field(*response, "error").find("max_line"), std::string::npos)
      << Field(*response, "error");
  EXPECT_FALSE(fat.Read().has_value()) << "connection not closed";
  EXPECT_GE(daemon->evictions(), 1u);

  Json::Object extra;
  extra["source"] = Json(1);
  extra["values"] = Json(false);
  bystander.Send(QueryLine("bfs", "fine", std::move(extra)));
  const std::optional<Json> ok = bystander.Read();
  ASSERT_TRUE(ok);
  EXPECT_EQ(Field(*ok, "status"), "done");
}

// Binary garbage on the wire: where a line boundary exists the daemon
// answers one parseable {"op":"error"} and the connection keeps working;
// a truncated garbage stream (no newline, then close) is just a quiet
// disconnect. Either way the daemon survives and other clients are
// unaffected.
TEST(DaemonTest, BinaryGarbageGetsErrorAndCleanClose) {
  auto daemon = MakeDaemon(MakeGraph());

  {
    Client garbage(daemon->port());
    std::string junk;
    junk += '\x01';
    junk += '\x00';  // embedded NUL — not even text
    junk += "\xff\xfe{{[[\"";
    junk += '\n';
    ASSERT_TRUE(garbage.socket().WriteAll(junk));
    const std::optional<Json> response = garbage.Read();
    ASSERT_TRUE(response);  // Read() asserts the line parses
    EXPECT_EQ(Field(*response, "op"), "error");

    // The same connection still serves real requests afterwards.
    Json::Object ping;
    ping["op"] = Json("ping");
    garbage.Send(Json(std::move(ping)));
    const std::optional<Json> pong = garbage.Read();
    ASSERT_TRUE(pong);
    EXPECT_EQ(Field(*pong, "op"), "pong");
  }
  {
    // Garbage with no newline, then an abrupt close: no response is
    // owed, the reader just sees EOF mid-line.
    Client truncated(daemon->port());
    std::string junk("\x7f\x03garbage without a newline");
    ASSERT_TRUE(truncated.socket().WriteAll(junk));
  }  // destructor closes the socket

  Client other(daemon->port());
  Json::Object ping;
  ping["op"] = Json("ping");
  other.Send(Json(std::move(ping)));
  const std::optional<Json> pong = other.Read();
  ASSERT_TRUE(pong) << "garbage connections damaged the daemon";
  EXPECT_EQ(Field(*pong, "op"), "pong");
}

// Out-of-domain numeric option values are rejected at decode time with a
// per-request {"op":"error"} naming the offending key — never silently
// clamped, never admitted to the engine, never a dropped connection.
TEST(DaemonTest, NumericDomainErrorsNameTheOffendingKey) {
  auto daemon = MakeDaemon(MakeGraph());
  Client client(daemon->port());

  const struct {
    const char* name;
    const char* line;
    const char* expect;  // substring of the "error" field
  } cases[] = {
      {"pagerank damping 0",
       R"({"op":"query","kind":"pagerank","opts":{"damping":0}})",
       "'damping' must be in (0, 1)"},
      {"pagerank damping 1",
       R"({"op":"query","kind":"pagerank","opts":{"damping":1}})",
       "'damping' must be in (0, 1)"},
      {"ppr damping 1",
       R"({"op":"query","kind":"ppr","source":1,"opts":{"damping":1}})",
       "'damping' must be in (0, 1)"},
      {"sssp delta 0",
       R"({"op":"query","kind":"sssp","source":1,"opts":{"delta":0}})",
       "'delta' must be > 0"},
      {"sssp delta negative",
       R"({"op":"query","kind":"sssp","source":1,"opts":{"delta":-2}})",
       "'delta' must be > 0"},
      {"matrix delta 0",
       R"({"op":"query","kind":"matrix","sources":[1],"opts":{"delta":0}})",
       "'delta' must be > 0"},
      // Overflowing literals never reach the option decoders: the JSON
      // number parser rejects anything that lands non-finite.
      {"overflow damping literal",
       R"({"op":"query","kind":"pagerank","opts":{"damping":1e999}})",
       "bad JSON"},
      {"matrix missing sources", R"({"op":"query","kind":"matrix"})",
       "missing required field 'sources'"},
      {"matrix empty sources",
       R"({"op":"query","kind":"matrix","sources":[]})",
       "'sources' must be a non-empty array"},
      {"sources on wrong kind",
       R"({"op":"query","kind":"bfs","source":1,"sources":[1]})",
       "'sources' is only valid for kind 'matrix'"},
      {"matrix wave 0",
       R"({"op":"query","kind":"matrix","sources":[1],"opts":{"wave":0}})",
       "'wave' must be an integer in [1, 64]"},
      {"matrix wave 65",
       R"({"op":"query","kind":"matrix","sources":[1],"opts":{"wave":65}})",
       "'wave' must be an integer in [1, 64]"},
      {"matrix short paths entry",
       R"({"op":"query","kind":"matrix","sources":[1],"paths":[[1]]})",
       "each 'paths' entry must be [source, target]"},
      {"matrix bad backend",
       R"({"op":"query","kind":"matrix","sources":[1],"opts":{"backend":"gpu"}})",
       "'backend' must be one of"},
  };
  for (const auto& c : cases) {
    client.SendRaw(c.line);
    const std::optional<Json> response = client.Read();
    ASSERT_TRUE(response) << c.name;
    EXPECT_EQ(Field(*response, "op"), "error") << c.name;
    const std::string error = Field(*response, "error");
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << c.name << ": missing '" << c.expect << "' in: " << error;
  }

  // The connection keeps serving after the rejection burst.
  Json::Object extra;
  extra["sources"] = Json(Json::Array{Json(0)});
  extra["values"] = Json(false);
  client.Send(QueryLine("matrix", "alive", std::move(extra)));
  const std::optional<Json> ok = client.Read();
  ASSERT_TRUE(ok);
  EXPECT_EQ(Field(*ok, "status"), "done");
}

// An out-of-range source is not a decode error — it is admitted and
// fails at engine pickup with the canonical SourceRangeError text, the
// same whether the query ran solo or merged into a wave.
TEST(DaemonTest, OutOfRangeSourceFailsWithCanonicalErrorText) {
  graph::Csr g = MakeGraph();
  const vid_t n = g.num_vertices();
  auto daemon = MakeDaemon(std::move(g));
  Client client(daemon->port());

  Json::Object extra;
  extra["source"] = Json(static_cast<std::int64_t>(n) + 7);
  client.Send(QueryLine("bfs", "oops", std::move(extra)));

  const std::optional<Json> response = client.Read();
  ASSERT_TRUE(response);
  EXPECT_EQ(Field(*response, "op"), "result");
  EXPECT_EQ(Tag(*response), "oops");
  EXPECT_EQ(Field(*response, "status"), "failed");
  EXPECT_EQ(Field(*response, "error"),
            engine::SourceRangeError("bfs", static_cast<long long>(n) + 7, n));
}

// --- operator endpoints -----------------------------------------------------

TEST(DaemonTest, PingGraphsStatsAndStatsPage) {
  auto daemon = MakeDaemon(MakeGraph());
  Client client(daemon->port());

  client.SendRaw(R"({"op":"ping","tag":"p"})");
  const std::optional<Json> pong = client.Read();
  ASSERT_TRUE(pong);
  EXPECT_EQ(Field(*pong, "op"), "pong");
  EXPECT_EQ(Tag(*pong), "p");

  client.SendRaw(R"({"op":"graphs"})");
  const std::optional<Json> graphs = client.Read();
  ASSERT_TRUE(graphs);
  const Json* list = graphs->Find("graphs");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->as_array().size(), 1u);
  EXPECT_EQ(Field(list->as_array()[0], "name"), "g");

  // Run one query so the bfs histogram and the engine ledger are warm.
  Json::Object extra;
  extra["source"] = Json(0);
  extra["values"] = Json(false);
  client.Send(QueryLine("bfs", "q", std::move(extra)));
  const std::optional<Json> result = client.Read();
  ASSERT_TRUE(result);
  EXPECT_EQ(Field(*result, "status"), "done");

  client.SendRaw(R"({"op":"stats"})");
  const std::optional<Json> stats = client.Read();
  ASSERT_TRUE(stats);
  const Json* done = stats->Find("done");
  ASSERT_NE(done, nullptr);
  EXPECT_GE(done->as_number(), 1.0);

  // The plain-text page: everything up to the "# end" marker. The
  // observer records *after* the result is fulfilled (telemetry never
  // stalls waiters), so the histogram can lag the response by a beat —
  // re-scrape until it lands.
  std::string page;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    client.SendRaw("/stats");
    page.clear();
    for (;;) {
      const std::optional<std::string> line = client.socket().ReadLine();
      ASSERT_TRUE(line) << "connection closed mid-page";
      if (*line == "# end") break;
      page += *line + "\n";
    }
    if (page.find("query_latency_ms{kind=\"bfs\"}") != std::string::npos ||
        std::chrono::steady_clock::now() >= give_up) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(page.find("gunrockd_uptime_ms"), std::string::npos) << page;
  EXPECT_NE(page.find("engine_done"), std::string::npos) << page;
  EXPECT_NE(page.find("query_latency_ms{kind=\"bfs\"}"), std::string::npos)
      << page;
}

// --- graceful drain ---------------------------------------------------------

// Stop() while a query is running: the in-flight query completes and is
// delivered, the connection then closes, and new connects are refused.
TEST(DaemonTest, GracefulDrainCompletesInFlightAndRefusesNewConnects) {
  auto daemon = MakeDaemon(MakeGraph(), /*inflight=*/1);
  const int port = daemon->port();
  Client client(port);

  // A query with a comfortable runtime: 2000 PageRank iterations (zero
  // tolerance keeps it from converging early) — wide enough a window
  // that the poll below reliably catches it in flight.
  Json::Object opts;
  opts["tolerance"] = Json(0.0);
  opts["max_iterations"] = Json(2000);
  Json::Object extra;
  extra["opts"] = Json(std::move(opts));
  extra["values"] = Json(false);
  client.Send(QueryLine("pagerank", "inflight", std::move(extra)));

  // Wait until the engine has actually picked it up (or, on a machine
  // fast enough to finish it already, completed it), then drain.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const engine::QueryEngine::Stats s = daemon->engine().stats();
    if (s.running > 0 || s.done > 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "query never started running";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&] { daemon->Stop(); });

  // The in-flight query still completes and reaches the client...
  const std::optional<Json> response = client.Read();
  ASSERT_TRUE(response);
  EXPECT_EQ(Tag(*response), "inflight");
  EXPECT_EQ(Field(*response, "status"), "done");
  // ...then the daemon closes the drained connection.
  EXPECT_FALSE(client.socket().ReadLine().has_value());
  stopper.join();

  // The listener is gone: new connects are refused.
  std::string error;
  serve::Socket refused = serve::ConnectTcp("127.0.0.1", port, &error);
  EXPECT_FALSE(refused.valid());
}

// --- fair-share admission ---------------------------------------------------

// A flooding tenant cannot starve a higher-weight graph: with one runner
// and sixteen queued "noisy" queries, four "vip" queries submitted after
// the flood still complete ahead of most of it.
TEST(DaemonTest, FairShareAdmissionUnderFloodingTenant) {
  DaemonConfig config;
  config.inflight = 1;  // serialize runs: completion order == pick order
  auto daemon = std::make_unique<Daemon>(config);
  engine::GraphOptions noisy_opts;
  noisy_opts.weight = 1.0;
  engine::GraphOptions vip_opts;
  vip_opts.weight = 8.0;
  // Scale-10 graphs: each 40-iteration run costs milliseconds, so the
  // whole burst is parsed and queued while the first run executes.
  daemon->AddGraph("noisy", MakeGraph(10), noisy_opts);
  daemon->AddGraph("vip", MakeGraph(10), vip_opts);
  std::string error;
  ASSERT_TRUE(daemon->Start(&error)) << error;

  // Fixed-work queries (zero tolerance: the full 40 iterations, every
  // time) so every slot costs the same; one buffered write ships the
  // whole flood before the vip requests, like a burst from a greedy
  // client.
  const auto query = [](const std::string& graph, const std::string& tag) {
    Json::Object opts;
    opts["tolerance"] = Json(0.0);
    opts["max_iterations"] = Json(40);
    Json::Object o;
    o["op"] = Json("query");
    o["kind"] = Json("pagerank");
    o["graph"] = Json(graph);
    o["tag"] = Json(tag);
    o["opts"] = Json(std::move(opts));
    o["values"] = Json(false);
    return Json(std::move(o)).Dump() + "\n";
  };
  const int kNoisy = 16, kVip = 4;
  std::string burst;
  for (int i = 0; i < kNoisy; ++i) {
    burst += query("noisy", std::string("n").append(std::to_string(i)));
  }
  for (int i = 0; i < kVip; ++i) {
    burst += query("vip", std::string("v").append(std::to_string(i)));
  }

  Client client(daemon->port());
  ASSERT_TRUE(client.socket().WriteAll(burst));

  int first_vip = -1, last_vip = -1;
  for (int pos = 0; pos < kNoisy + kVip; ++pos) {
    const std::optional<Json> response = client.Read();
    ASSERT_TRUE(response) << "response " << pos;
    EXPECT_EQ(Field(*response, "status"), "done") << Tag(*response);
    if (Tag(*response)[0] == 'v') {
      if (first_vip < 0) first_vip = pos;
      last_vip = pos;
    }
  }
  // The stride scheduler favors the 8x-weight graph as soon as its
  // queries arrive: all four vip completions land well before the flood
  // finishes. (Bounds are loose — the claim is "not starved", not an
  // exact schedule.)
  EXPECT_GE(first_vip, 0) << "no vip completion seen";
  EXPECT_LT(first_vip, 8);
  EXPECT_LT(last_vip, kNoisy);  // ahead of >= 4 noisy stragglers
}

}  // namespace
}  // namespace gunrock
