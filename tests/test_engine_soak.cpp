// Randomized mixed-workload soak for the QueryEngine: an interleaved
// storm of all nine primitive families over multiple registered graphs,
// with random cancellation, deadlines and quota pressure — the churn a
// serving deployment actually sees. Under the GUNROCK_TEST_SEED sweep
// every completed query must be bit-identical to a direct sequential
// call made before the engine existed (the engine adds concurrency, not
// nondeterminism), terminal stats must balance, and the workspace pool
// must never create more arenas than its capacity.
//
// The storm size is bounded by GUNROCK_SOAK_QUERIES (the ctest
// registration pins a CI-friendly budget; run the binary standalone with
// a bigger budget for a longer soak).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using engine::QueryRequest;
using engine::QueryResult;
using engine::QueryStatus;

std::size_t SoakQueries() {
  if (const char* env = std::getenv("GUNROCK_SOAK_QUERIES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 120;
}

using test::ExpectScoresMatch;

/// Compares an engine result against the direct-call reference of the
/// same request, field by field, on each family's deterministic
/// projection (depth for BFS, dist+pred for SSSP, labels, forests,
/// exact triangle tallies; double scores via ExpectScoresMatch).
void ExpectSameResult(const QueryResult& want, const QueryResult& got) {
  ASSERT_EQ(want.index(), got.index()) << "result kind mismatch";
  if (const auto* w = std::get_if<BfsResult>(&want)) {
    EXPECT_EQ(std::get<BfsResult>(got).depth, w->depth);
  } else if (const auto* w = std::get_if<SsspResult>(&want)) {
    EXPECT_EQ(std::get<SsspResult>(got).dist, w->dist);
    EXPECT_EQ(std::get<SsspResult>(got).pred, w->pred);
  } else if (const auto* w = std::get_if<BcResult>(&want)) {
    EXPECT_EQ(std::get<BcResult>(got).depth, w->depth);
    EXPECT_EQ(std::get<BcResult>(got).sigma, w->sigma)
        << "path counts are integers: exact in any order";
    ExpectScoresMatch(w->bc, std::get<BcResult>(got).bc, "bc");
  } else if (const auto* w = std::get_if<CcResult>(&want)) {
    EXPECT_EQ(std::get<CcResult>(got).component, w->component);
    EXPECT_EQ(std::get<CcResult>(got).num_components, w->num_components);
  } else if (const auto* w = std::get_if<PagerankResult>(&want)) {
    EXPECT_EQ(std::get<PagerankResult>(got).rank, w->rank)
        << "pull PageRank gathers in a fixed order: exact";
    EXPECT_EQ(std::get<PagerankResult>(got).iterations, w->iterations);
  } else if (const auto* w = std::get_if<MstResult>(&want)) {
    EXPECT_EQ(std::get<MstResult>(got).tree_edges, w->tree_edges);
    EXPECT_EQ(std::get<MstResult>(got).total_weight, w->total_weight)
        << "fixed-block reduction: exact";
    EXPECT_EQ(std::get<MstResult>(got).num_components, w->num_components);
  } else if (const auto* w = std::get_if<TriangleResult>(&want)) {
    EXPECT_EQ(std::get<TriangleResult>(got).num_triangles,
              w->num_triangles);
    EXPECT_EQ(std::get<TriangleResult>(got).per_vertex, w->per_vertex);
    EXPECT_EQ(std::get<TriangleResult>(got).clustering, w->clustering);
  } else if (const auto* w =
                 std::get_if<LabelPropagationResult>(&want)) {
    EXPECT_EQ(std::get<LabelPropagationResult>(got).label, w->label);
    EXPECT_EQ(std::get<LabelPropagationResult>(got).num_communities,
              w->num_communities);
  } else if (const auto* w = std::get_if<HitsResult>(&want)) {
    ExpectScoresMatch(w->hub, std::get<HitsResult>(got).hub, "hits.hub");
    ExpectScoresMatch(w->authority, std::get<HitsResult>(got).authority,
                      "hits.authority");
  } else if (const auto* w = std::get_if<SalsaResult>(&want)) {
    ExpectScoresMatch(w->hub, std::get<SalsaResult>(got).hub, "salsa.hub");
    ExpectScoresMatch(w->authority, std::get<SalsaResult>(got).authority,
                      "salsa.authority");
  } else if (const auto* w = std::get_if<PprResult>(&want)) {
    ExpectScoresMatch(w->rank, std::get<PprResult>(got).rank, "ppr.rank");
  } else {
    FAIL() << "unhandled result alternative";
  }
}

/// One registered graph plus everything needed to run requests directly.
struct SoakGraph {
  std::string name;
  graph::Csr graph;
  graph::Csr reverse;  // for direct HITS/SALSA references
  std::vector<vid_t> sources;
};

/// Direct sequential execution of a request — the oracle, via the same
/// engine::RunRequest dispatch the engine's runners use. Runs before
/// the engine exists (single-owner pool), on the same global pool the
/// engine serves from, so chunk grains and reduction orders match.
QueryResult RunDirect(const SoakGraph& sg, const QueryRequest& request) {
  return engine::RunRequest(sg.graph, request, &sg.reverse);
}

/// The randomized request mix. Configuration space is intentionally
/// small (family x variant x source pool) so the direct-reference table
/// stays cheap; the *interleaving* under the engine is where the storm
/// randomness lives. Returns the request plus a stable reference key.
QueryRequest MakeRandomRequest(std::mt19937_64& rng, const SoakGraph& sg,
                               std::string* key) {
  const int family = static_cast<int>(rng() % 9);
  const int pick = static_cast<int>(rng() % 2);
  const vid_t source =
      sg.sources[static_cast<std::size_t>(rng() % sg.sources.size())];
  *key = sg.name + "/" + std::to_string(family) + "/" +
         std::to_string(pick) + "/" + std::to_string(source);
  switch (family) {
    case 0: {
      engine::BfsQuery q;
      q.source = source;
      q.opts.direction = core::Direction::kOptimizing;
      return q;
    }
    case 1: {
      engine::SsspQuery q;
      q.source = source;
      return q;
    }
    case 2: {
      engine::BcQuery q;
      q.source = source;
      return q;
    }
    case 3: {
      if (pick == 0) return engine::CcQuery{};
      engine::PagerankQuery q;
      q.opts.pull = true;
      q.opts.max_iterations = 20;
      return q;
    }
    case 4: {
      engine::MstQuery q;
      q.opts.variant = pick ? MstVariant::kScanAll : MstVariant::kFiltered;
      return q;
    }
    case 5: {
      engine::TrianglesQuery q;
      q.opts.variant =
          pick ? TriangleVariant::kHash : TriangleVariant::kMergePath;
      return q;
    }
    case 6: {
      engine::LabelPropagationQuery q;
      q.opts.max_iterations = 15;
      q.opts.variant = pick ? LpVariant::kFullSweep : LpVariant::kFrontier;
      return q;
    }
    case 7: {
      if (pick == 0) {
        engine::HitsQuery q;
        q.opts.max_iterations = 10;
        return q;
      }
      engine::SalsaQuery q;
      q.opts.max_iterations = 10;
      return q;
    }
    default: {
      engine::PprQuery q;
      q.seeds = {source};
      q.opts.max_iterations = 30;
      return q;
    }
  }
}

std::vector<SoakGraph> MakeSoakGraphs() {
  auto& pool = par::ThreadPool::Global();
  std::vector<SoakGraph> graphs;
  {
    graph::RmatParams p;  // the serving-heavy scale-free shape
    p.scale = 9;
    p.edge_factor = 8;
    p.seed = 1000 + test::TestSeed();
    auto coo = GenerateRmat(p, pool);
    graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
    graph::BuildOptions opts;
    opts.symmetrize = true;
    SoakGraph sg;
    sg.name = "social";
    sg.graph = graph::BuildCsr(coo, opts);
    graphs.push_back(std::move(sg));
  }
  {
    graph::RoadParams p;  // long-diameter mesh
    p.width = 24;
    p.height = 24;
    p.seed = 2000 + test::TestSeed();
    auto coo = GenerateRoad(p, pool);
    graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed() + 1);
    graph::BuildOptions opts;
    opts.symmetrize = true;
    SoakGraph sg;
    sg.name = "mesh";
    sg.graph = graph::BuildCsr(coo, opts);
    graphs.push_back(std::move(sg));
  }
  for (auto& sg : graphs) {
    sg.reverse = graph::ReverseCsr(sg.graph, pool);
    sg.sources = test::SpreadSources(sg.graph, 3);
  }
  return graphs;
}

struct PendingQuery {
  engine::QueryHandle handle;
  std::string key;
  bool cancelled = false;      // Cancel() was called at some point
  bool had_deadline = false;   // submitted with a tight deadline
};

/// Drains `pending`, checking every terminal state's contract; returns
/// the number of kDone completions verified against the reference table.
std::size_t DrainAndVerify(
    std::vector<PendingQuery>& pending,
    const std::map<std::string, QueryResult>& reference) {
  std::size_t verified = 0;
  for (auto& pq : pending) {
    const auto& resp = pq.handle.Wait();
    switch (resp.status) {
      case QueryStatus::kDone: {
        const auto it = reference.find(pq.key);
        if (it == reference.end()) {
          ADD_FAILURE() << "no reference for " << pq.key;
          break;
        }
        ExpectSameResult(it->second, resp.result);
        ++verified;
        break;
      }
      case QueryStatus::kCancelled:
        EXPECT_TRUE(pq.cancelled) << pq.key
            << ": cancelled without a Cancel() call";
        EXPECT_TRUE(std::holds_alternative<std::monostate>(resp.result));
        break;
      case QueryStatus::kDeadlineExceeded:
        EXPECT_TRUE(pq.had_deadline) << pq.key
            << ": deadline-exceeded without a deadline";
        EXPECT_TRUE(std::holds_alternative<std::monostate>(resp.result));
        break;
      case QueryStatus::kRejected:
        EXPECT_TRUE(std::holds_alternative<std::monostate>(resp.result));
        break;
      default:
        ADD_FAILURE() << pq.key << ": unexpected terminal status "
                      << engine::ToString(resp.status) << " ("
                      << resp.error << ")";
    }
  }
  pending.clear();
  return verified;
}

TEST(EngineSoakTest, RandomizedMixedWorkloadStaysBitIdentical) {
  const std::size_t budget = SoakQueries();
  const auto graphs = MakeSoakGraphs();

  // Reference table: every (graph, family, variant, source) cell the
  // storm can hit, computed by direct sequential calls *before* any
  // engine exists — the pool is still in strict single-owner mode here.
  std::map<std::string, QueryResult> reference;
  {
    std::mt19937_64 probe(test::TestSeed());
    // The request space is small and enumerable through the same
    // generator: roll until every cell has been seen. 64 rolls per cell
    // bound makes nontermination impossible.
    for (std::size_t i = 0; i < 64 * 9 * 2 * 3 * graphs.size(); ++i) {
      const SoakGraph& sg = graphs[i % graphs.size()];
      std::string key;
      QueryRequest request = MakeRandomRequest(probe, sg, &key);
      if (!reference.count(key)) {
        reference.emplace(key, RunDirect(sg, request));
      }
    }
  }

  // Phase 1: blocking engine with a quota on the hot graph. The storm
  // randomly cancels some queries and arms tight deadlines on others;
  // the submitter occasionally blocks on the quota/queue — exactly the
  // backpressure a production deployment runs under.
  std::mt19937_64 rng(test::TestSeed() * 7919 + 17);
  std::size_t verified = 0;
  {
    engine::QueryEngineOptions eopts;
    eopts.max_in_flight = 3;
    eopts.queue_capacity = 16;
    engine::QueryEngine engine(eopts);
    engine::GraphOptions hot_quota;
    hot_quota.quota = 4;
    engine.RegisterGraph(graphs[0].name, graphs[0].graph, hot_quota);
    engine.RegisterGraph(graphs[1].name, graphs[1].graph);

    std::vector<PendingQuery> pending;
    for (std::size_t i = 0; i < budget; ++i) {
      const SoakGraph& sg = graphs[rng() % 10 < 6 ? 0 : 1];
      std::string key;
      QueryRequest request = MakeRandomRequest(rng, sg, &key);

      PendingQuery pq;
      pq.key = key;
      engine::SubmitOptions sopts;
      const int action = static_cast<int>(rng() % 10);
      if (action == 0) {
        // A tight deadline: expires mid-run or in the queue, or the
        // query beats it — all three outcomes are legal.
        sopts.deadline_ms = 0.5 + static_cast<double>(rng() % 40) / 10.0;
        pq.had_deadline = true;
      }
      pq.handle = engine.Submit(sg.name, std::move(request), sopts);
      if (action == 1) {
        pq.handle.Cancel();  // may land before, during or after the run
        pq.cancelled = true;
      }
      pending.push_back(std::move(pq));

      // Periodically drain to keep the handle set bounded and to mix
      // wait-side load into the storm.
      if (pending.size() >= 24) {
        verified += DrainAndVerify(pending, reference);
      }
    }
    verified += DrainAndVerify(pending, reference);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, budget);
    EXPECT_EQ(stats.done + stats.cancelled + stats.deadline_exceeded +
                  stats.rejected + stats.failed,
              budget)
        << "every submitted query must reach exactly one terminal state";
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.rejected, 0u) << "kBlock never rejects";

    const auto ws = engine.workspace_stats();
    EXPECT_LE(ws.created, static_cast<std::size_t>(eopts.max_in_flight))
        << "workspace creations must stay within the pool capacity";
    EXPECT_EQ(ws.outstanding, 0u);
    EXPECT_EQ(engine.GraphInFlight(graphs[0].name), 0u);
    EXPECT_EQ(engine.GraphInFlight(graphs[1].name), 0u);
  }

  // Phase 2: rejecting engine with a tiny queue and a tight quota — the
  // overload shape. Rejections are expected; everything that does
  // complete must still be bit-identical, and quota slots released by
  // rejected/cancelled queries must keep the engine serving.
  {
    engine::QueryEngineOptions eopts;
    eopts.max_in_flight = 2;
    eopts.queue_capacity = 4;
    eopts.backpressure = engine::QueryEngineOptions::Backpressure::kReject;
    engine::QueryEngine engine(eopts);
    engine::GraphOptions tight;
    tight.quota = 3;
    engine.RegisterGraph(graphs[0].name, graphs[0].graph, tight);
    engine.RegisterGraph(graphs[1].name, graphs[1].graph);

    const std::size_t overload = budget / 2;
    std::vector<PendingQuery> pending;
    for (std::size_t i = 0; i < overload; ++i) {
      const SoakGraph& sg = graphs[rng() % 2];
      std::string key;
      QueryRequest request = MakeRandomRequest(rng, sg, &key);
      PendingQuery pq;
      pq.key = key;
      pq.handle = engine.Submit(sg.name, std::move(request));
      if (rng() % 8 == 0) {
        pq.handle.Cancel();
        pq.cancelled = true;
      }
      pending.push_back(std::move(pq));
    }
    verified += DrainAndVerify(pending, reference);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, overload);
    EXPECT_EQ(stats.done + stats.cancelled + stats.deadline_exceeded +
                  stats.rejected + stats.failed,
              overload);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(engine.workspace_stats().created,
              static_cast<std::size_t>(eopts.max_in_flight));
    EXPECT_EQ(engine.workspace_stats().outstanding, 0u);
  }

  // Phase 3: a streamed batch over the hot graph — finish-order drain
  // under the same verification contract.
  {
    engine::QueryEngineOptions eopts;
    eopts.max_in_flight = 3;
    engine::QueryEngine engine(eopts);
    engine.RegisterGraph(graphs[0].name, graphs[0].graph);

    engine::SsspQuery proto;
    auto stream = engine.SubmitAll(graphs[0].name, graphs[0].sources,
                                   proto, engine::kStream);
    // Collect in finish order; verify after the engine is gone (direct
    // reference runs then own the pool again).
    std::vector<std::optional<SsspResult>> streamed(
        graphs[0].sources.size());
    while (auto c = stream.Next()) {
      const auto& resp = c->handle.Wait();
      ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
      streamed[c->index] = std::get<SsspResult>(resp.result);
    }
    engine.Shutdown();
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      ASSERT_TRUE(streamed[i].has_value()) << "missing completion " << i;
      const auto want =
          Sssp(graphs[0].graph, graphs[0].sources[i], proto.opts);
      EXPECT_EQ(streamed[i]->dist, want.dist);
      EXPECT_EQ(streamed[i]->pred, want.pred);
    }
  }

  // Phase 4: coalescing-enabled storm. Fan-outs of depth-only BFS and
  // single-seed PPR queue up behind a blocker, then merge into batched
  // multi-source waves at pickup — with random queued cancels sprinkled
  // in, every query that completes must still be bit-identical to its
  // pre-engine direct reference, and every group with two live members
  // must actually have been served by a wave.
  {
    engine::QueryEngineOptions eopts;
    eopts.max_in_flight = 1;  // one runner: wave formation is deterministic
    eopts.queue_capacity = budget + 8;
    engine::QueryEngine engine(eopts);
    const SoakGraph& sg = graphs[0];
    engine.RegisterGraph(sg.name, sg.graph);

    engine::PagerankQuery blocker_q;
    blocker_q.opts.tolerance = -1.0;  // never converges; cancelled below
    blocker_q.opts.max_iterations = 1 << 28;
    auto blocker = engine.Submit(sg.name, blocker_q);
    while (blocker.status() == QueryStatus::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const std::size_t waves_budget = std::max<std::size_t>(budget / 3, 16);
    std::vector<PendingQuery> pending;
    std::size_t live_bfs = 0;
    std::size_t live_ppr = 0;
    for (std::size_t i = 0; i < waves_budget; ++i) {
      const vid_t source =
          sg.sources[static_cast<std::size_t>(rng() % sg.sources.size())];
      const int pick = static_cast<int>(rng() % 2);
      PendingQuery pq;
      QueryRequest request;
      const bool is_bfs = rng() % 2 == 0;
      if (is_bfs) {
        engine::BfsQuery q;
        q.source = source;
        q.opts.direction = core::Direction::kOptimizing;
        q.opts.compute_preds = false;  // coalescible shape (depths only)
        // The reference cell was computed with preds on; ExpectSameResult
        // compares the depth projection, which preds do not affect.
        pq.key = sg.name + "/0/" + std::to_string(pick) + "/" +
                 std::to_string(source);
        request = q;
      } else {
        engine::PprQuery q;
        q.seeds = {source};
        q.opts.max_iterations = 30;  // matches the family-8 reference cell
        pq.key = sg.name + "/8/" + std::to_string(pick) + "/" +
                 std::to_string(source);
        request = q;
      }
      pq.handle = engine.Submit(sg.name, std::move(request),
                                [] {
                                  engine::SubmitOptions sopts;
                                  sopts.coalesce =
                                      engine::SubmitOptions::Coalesce::kOn;
                                  return sopts;
                                }());
      if (rng() % 8 == 0) {
        pq.handle.Cancel();  // queued cancel: the wave starts without it
        pq.cancelled = true;
      } else {
        ++(is_bfs ? live_bfs : live_ppr);
      }
      pending.push_back(std::move(pq));
    }
    blocker.Cancel();
    ASSERT_EQ(blocker.Wait().status, QueryStatus::kCancelled);
    verified += DrainAndVerify(pending, reference);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.failed, 0u);
    // Waves merge within an option group: all BFS submits share one
    // group, all PPR submits the other, so any group with two live
    // members must have produced a wave.
    if (live_bfs >= 2 || live_ppr >= 2) {
      EXPECT_GE(stats.waves, 1u)
          << "queued coalescible queries must have merged";
      EXPECT_GE(stats.coalesced, 2u);
      EXPECT_LE(stats.max_wave, kMaxBatchLanes);
    }
    EXPECT_LE(engine.workspace_stats().created,
              static_cast<std::size_t>(eopts.max_in_flight));
    EXPECT_EQ(engine.workspace_stats().outstanding, 0u);
  }

  // The storm must have actually verified a healthy share of results —
  // a soak where almost everything cancelled proves nothing.
  EXPECT_GE(verified, budget / 2)
      << "too few completed queries were verified";
}

}  // namespace
}  // namespace gunrock
