// Source sweeps: every traversal primitive against its oracle from many
// different sources of one fixed scale-free graph — catches source-
// dependent corner cases (isolated sources, leaf sources, hub sources).
#include <gtest/gtest.h>

#include "gunrock.hpp"

namespace gunrock {
namespace {

const graph::Csr& Fixture() {
  static const graph::Csr g = [] {
    graph::RmatParams p;
    p.scale = 12;
    p.edge_factor = 6;  // sparse: leaves many isolated vertices
    auto coo = GenerateRmat(p, par::ThreadPool::Global());
    graph::AttachRandomWeights(coo, 1, 64);
    graph::BuildOptions opts;
    opts.symmetrize = true;
    return graph::BuildCsr(coo, opts);
  }();
  return g;
}

class SourceSweepTest : public ::testing::TestWithParam<vid_t> {};

// Stride chosen to scatter sources irregularly through the id space.
inline constexpr std::int64_t kSourceStride = 997;

vid_t PickSource(vid_t index) {
  const auto& g = Fixture();
  return static_cast<vid_t>(
      (static_cast<std::int64_t>(index) * kSourceStride) %
      g.num_vertices());
}

TEST_P(SourceSweepTest, BfsMatchesSerial) {
  const auto& g = Fixture();
  const vid_t src = PickSource(GetParam());
  const auto expected = serial::Bfs(g, src);
  BfsOptions opts;
  opts.direction = core::Direction::kOptimizing;
  const auto got = Bfs(g, src, opts);
  EXPECT_EQ(got.depth, expected.depth);
}

TEST_P(SourceSweepTest, SsspMatchesDijkstra) {
  const auto& g = Fixture();
  const vid_t src = PickSource(GetParam());
  const auto expected = serial::Dijkstra(g, src);
  const auto got = Sssp(g, src);
  ASSERT_EQ(got.dist.size(), expected.dist.size());
  for (std::size_t v = 0; v < got.dist.size(); ++v) {
    ASSERT_FLOAT_EQ(got.dist[v], expected.dist[v]) << "vertex " << v;
  }
}

TEST_P(SourceSweepTest, BcMatchesBrandes) {
  const auto& g = Fixture();
  const vid_t src = PickSource(GetParam());
  const vid_t src_list[] = {src};
  const auto expected = serial::Brandes(g, src_list);
  const auto got = Bc(g, src);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(got.bc[v], expected[v], 1e-9 + 1e-9 * expected[v])
        << "vertex " << v;
  }
}

TEST_P(SourceSweepTest, HardwiredAgreesWithGunrock) {
  const auto& g = Fixture();
  const vid_t src = PickSource(GetParam());
  auto& pool = par::ThreadPool::Global();
  const auto hw_bfs = hardwired::Bfs(g, src, pool);
  const auto gr_bfs = Bfs(g, src);
  EXPECT_EQ(hw_bfs.depth, gr_bfs.depth);
  const auto hw_sssp = hardwired::Sssp(g, src, pool);
  const auto gr_sssp = Sssp(g, src);
  for (std::size_t v = 0; v < hw_sssp.dist.size(); ++v) {
    ASSERT_FLOAT_EQ(hw_sssp.dist[v], gr_sssp.dist[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sources, SourceSweepTest,
                         ::testing::Range<vid_t>(0, 16));

}  // namespace
}  // namespace gunrock
