// Triangle counting (vs closed forms and a brute-force oracle) and label
// propagation (community recovery on planted partitions).
#include <gtest/gtest.h>

#include <set>

#include "gunrock.hpp"
#include "primitives/label_propagation.hpp"
#include "primitives/triangles.hpp"

namespace gunrock {
namespace {

graph::Csr Undirected(graph::Coo coo) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

std::int64_t BruteForceTriangles(const graph::Csr& g) {
  std::int64_t count = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      if (v <= u) continue;
      for (const vid_t w : g.neighbors(v)) {
        if (w <= v) continue;
        const auto nu = g.neighbors(u);
        if (std::binary_search(nu.begin(), nu.end(), w)) ++count;
      }
    }
  }
  return count;
}

TEST(TriangleTest, ClosedForms) {
  // Complete graph K_n has C(n,3) triangles.
  EXPECT_EQ(CountTriangles(Undirected(graph::MakeComplete(10)))
                .num_triangles,
            120);
  // Trees and cycles (length > 3) have none.
  EXPECT_EQ(CountTriangles(Undirected(graph::MakeBinaryTree(8)))
                .num_triangles,
            0);
  EXPECT_EQ(CountTriangles(Undirected(graph::MakeCycle(50)))
                .num_triangles,
            0);
  // A 3-cycle is one triangle.
  EXPECT_EQ(CountTriangles(Undirected(graph::MakeCycle(3)))
                .num_triangles,
            1);
}

TEST(TriangleTest, KarateClubHas45Triangles) {
  // A well-known property of Zachary's karate club.
  const auto r = CountTriangles(Undirected(graph::MakeKarate()));
  EXPECT_EQ(r.num_triangles, 45);
}

TEST(TriangleTest, MatchesBruteForceOnRandomGraphs) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    graph::RmatParams p;
    p.scale = 9;
    p.edge_factor = 6;
    p.seed = seed;
    const auto g =
        Undirected(GenerateRmat(p, par::ThreadPool::Global()));
    const auto got = CountTriangles(g);
    EXPECT_EQ(got.num_triangles, BruteForceTriangles(g))
        << "seed " << seed;
    // Per-vertex counts triple-count the total.
    std::int64_t sum = 0;
    for (const auto c : got.per_vertex) sum += c;
    EXPECT_EQ(sum, 3 * got.num_triangles);
  }
}

TEST(TriangleTest, ClusteringCoefficients) {
  // K_4: every vertex fully clustered.
  const auto k4 = CountTriangles(Undirected(graph::MakeComplete(4)));
  for (const double c : k4.clustering) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(k4.global_clustering, 1.0);
  // Star: no closure at all.
  const auto star = CountTriangles(Undirected(graph::MakeStar(16)));
  EXPECT_DOUBLE_EQ(star.global_clustering, 0.0);
}

TEST(LabelPropagationTest, DisconnectedCliquesConvergeToMinLabels) {
  graph::Coo coo;
  coo.num_vertices = 15;
  for (vid_t base : {0, 5, 10}) {
    for (vid_t i = 0; i < 5; ++i) {
      for (vid_t j = i + 1; j < 5; ++j) {
        coo.PushEdge(base + i, base + j);
      }
    }
  }
  const auto g = Undirected(std::move(coo));
  const auto r = LabelPropagation(g);
  EXPECT_EQ(r.num_communities, 3);
  for (vid_t v = 0; v < 15; ++v) {
    EXPECT_EQ(r.label[v], (v / 5) * 5) << "vertex " << v;
  }
}

TEST(LabelPropagationTest, PlantedPartitionsRecovered) {
  graph::PlantedPartitionParams p;
  p.num_clusters = 6;
  p.cluster_size = 200;
  p.intra_edges_per_vertex = 10;
  p.inter_edges = 0;
  const auto g = Undirected(
      GeneratePlantedPartition(p, par::ThreadPool::Global()));
  const auto r = LabelPropagation(g);
  // Without cross edges, communities = connected components.
  const auto cc = serial::ConnectedComponents(g);
  EXPECT_EQ(r.num_communities, cc.num_components);
  // Labels constant within each component.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      EXPECT_EQ(r.label[u], r.label[v]);
    }
  }
}

TEST(LabelPropagationTest, MostlyRecoversNoisyCommunities) {
  graph::PlantedPartitionParams p;
  p.num_clusters = 4;
  p.cluster_size = 256;
  p.intra_edges_per_vertex = 12;
  p.inter_edges = 64;  // light noise between clusters
  const auto g = Undirected(
      GeneratePlantedPartition(p, par::ThreadPool::Global()));
  const auto r = LabelPropagation(g);
  // Count label purity per planted cluster: the dominant label should
  // cover nearly all members.
  std::int64_t pure = 0;
  for (int c = 0; c < 4; ++c) {
    std::map<vid_t, int> hist;
    for (vid_t v = c * 256; v < (c + 1) * 256; ++v) ++hist[r.label[v]];
    int best = 0;
    for (const auto& [label, count] : hist) best = std::max(best, count);
    pure += best;
  }
  EXPECT_GT(pure, static_cast<std::int64_t>(0.9 * g.num_vertices()));
  EXPECT_GT(r.iterations, 0);
}

TEST(LabelPropagationTest, RespectsIterationCap) {
  const auto g = Undirected(graph::MakeCycle(64));
  LabelPropagationOptions opts;
  opts.max_iterations = 2;
  const auto r = LabelPropagation(g, opts);
  EXPECT_LE(r.iterations, 2);
}

}  // namespace
}  // namespace gunrock
