// Connected components vs union-find: label agreement, component counts,
// and partition-equivalence on assorted topologies.
#include <gtest/gtest.h>

#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr Undirected(graph::Coo coo) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

class CcParamTest : public ::testing::TestWithParam<int> {};

graph::Csr GraphForCase(int idx) {
  switch (idx) {
    case 0: return Undirected(graph::MakeKarate());
    case 1: return Undirected(graph::MakePath(500));
    case 2: return Undirected(graph::MakeCycle(321));
    case 3: return Undirected(graph::MakeStar(100));
    case 4: {
      graph::PlantedPartitionParams p;
      p.num_clusters = 8;
      p.cluster_size = 128;
      return Undirected(
          GeneratePlantedPartition(p, par::ThreadPool::Global()));
    }
    case 5: {
      graph::RmatParams p;
      p.scale = 13;
      p.edge_factor = 4;  // sparse: many small components + one giant
      return Undirected(GenerateRmat(p, par::ThreadPool::Global()));
    }
    case 6: {
      graph::RggParams p;
      p.scale = 12;
      return Undirected(GenerateRgg(p, par::ThreadPool::Global()));
    }
    case 7: {
      // All-isolated vertices: no edges at all.
      graph::Coo coo;
      coo.num_vertices = 64;
      return graph::BuildCsr(coo);
    }
    default: return Undirected(graph::MakePath(2));
  }
}

TEST_P(CcParamTest, MatchesUnionFind) {
  const auto g = GraphForCase(GetParam());
  const auto expected = serial::ConnectedComponents(g);
  const auto got = Cc(g);

  EXPECT_EQ(got.num_components, expected.num_components);
  ASSERT_EQ(got.component.size(), expected.component.size());
  // Both label components by their minimum vertex id, so labels must
  // match exactly, not just up to renaming.
  for (std::size_t v = 0; v < got.component.size(); ++v) {
    EXPECT_EQ(got.component[v], expected.component[v]) << "vertex " << v;
  }
}

TEST_P(CcParamTest, LabelsAreRootsAndMinimal) {
  const auto g = GraphForCase(GetParam());
  const auto got = Cc(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t label = got.component[v];
    EXPECT_LE(label, v);                          // min-id labeling
    EXPECT_EQ(got.component[label], label);       // label is a root
  }
  // Neighbors share a component.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      EXPECT_EQ(got.component[u], got.component[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, CcParamTest, ::testing::Range(0, 8));

TEST(CcTest, EmptyGraph) {
  graph::Coo coo;
  coo.num_vertices = 0;
  const auto g = graph::BuildCsr(coo);
  const auto got = Cc(g);
  EXPECT_EQ(got.num_components, 0);
}

TEST(CcTest, TwoTriangles) {
  graph::Coo coo;
  coo.num_vertices = 6;
  coo.PushEdge(0, 1);
  coo.PushEdge(1, 2);
  coo.PushEdge(2, 0);
  coo.PushEdge(3, 4);
  coo.PushEdge(4, 5);
  coo.PushEdge(5, 3);
  const auto got = Cc(Undirected(std::move(coo)));
  EXPECT_EQ(got.num_components, 2);
  EXPECT_EQ(got.component[0], 0);
  EXPECT_EQ(got.component[1], 0);
  EXPECT_EQ(got.component[2], 0);
  EXPECT_EQ(got.component[3], 3);
  EXPECT_EQ(got.component[4], 3);
  EXPECT_EQ(got.component[5], 3);
}

TEST(CcTest, LongChainStressesPointerJumping) {
  // A path is the worst case for hooking (depth ~ n without jumping).
  const auto g = Undirected(graph::MakePath(10000));
  const auto got = Cc(g);
  EXPECT_EQ(got.num_components, 1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(got.component[v], 0);
  }
  // Pointer jumping must keep rounds logarithmic-ish, far below n.
  EXPECT_LT(got.stats.iterations, 64);
}

}  // namespace
}  // namespace gunrock
