// Connected components vs union-find: label agreement, component counts,
// and partition-equivalence on assorted topologies.
#include <gtest/gtest.h>

#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;
using test::Undirected;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = [] {
    // All-isolated vertices: no edges at all.
    graph::Coo isolated;
    isolated.num_vertices = 64;
    return new std::vector<TopologyCase>(
        test::CorpusBuilder()
            .Karate()
            .Path(500)
            .Cycle(321)
            .Star(100)
            .Disconnected(8, 128)
            .Rmat(13, 4)  // sparse: many small components + one giant
            .Rgg(12)
            .Custom("isolated", std::move(isolated))
            .Build());
  }();
  return *cases;
}

class CcParamTest : public ::testing::TestWithParam<std::size_t> {};

std::string CcName(
    const ::testing::TestParamInfo<std::size_t>& info) {
  return test::SafeTestName(Cases()[info.param].name);
}

TEST_P(CcParamTest, MatchesUnionFind) {
  const auto& g = Cases()[GetParam()].graph;
  const auto expected = serial::ConnectedComponents(g);
  const auto got = Cc(g);

  EXPECT_EQ(got.num_components, expected.num_components);
  // Both label components by their minimum vertex id, so labels must
  // match exactly, not just up to renaming.
  test::ExpectSameLabels(expected.component, got.component);
}

TEST_P(CcParamTest, LabelsAreRootsAndMinimal) {
  const auto& g = Cases()[GetParam()].graph;
  const auto got = Cc(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t label = got.component[v];
    EXPECT_LE(label, v);                          // min-id labeling
    EXPECT_EQ(got.component[label], label);       // label is a root
  }
  // Neighbors share a component.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      EXPECT_EQ(got.component[u], got.component[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, CcParamTest,
                         ::testing::Range<std::size_t>(0, 8), CcName);

TEST(CcTest, EmptyGraph) {
  graph::Coo coo;
  coo.num_vertices = 0;
  const auto g = graph::BuildCsr(coo);
  const auto got = Cc(g);
  EXPECT_EQ(got.num_components, 0);
}

TEST(CcTest, TwoTriangles) {
  graph::Coo coo;
  coo.num_vertices = 6;
  coo.PushEdge(0, 1);
  coo.PushEdge(1, 2);
  coo.PushEdge(2, 0);
  coo.PushEdge(3, 4);
  coo.PushEdge(4, 5);
  coo.PushEdge(5, 3);
  const auto got = Cc(Undirected(std::move(coo)));
  EXPECT_EQ(got.num_components, 2);
  EXPECT_EQ(got.component[0], 0);
  EXPECT_EQ(got.component[1], 0);
  EXPECT_EQ(got.component[2], 0);
  EXPECT_EQ(got.component[3], 3);
  EXPECT_EQ(got.component[4], 3);
  EXPECT_EQ(got.component[5], 3);
}

TEST(CcTest, LongChainStressesPointerJumping) {
  // A path is the worst case for hooking (depth ~ n without jumping).
  const auto g = Undirected(graph::MakePath(10000));
  const auto got = Cc(g);
  EXPECT_EQ(got.num_components, 1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(got.component[v], 0);
  }
  // Pointer jumping must keep rounds logarithmic-ish, far below n.
  EXPECT_LT(got.stats.iterations, 64);
}

}  // namespace
}  // namespace gunrock
