// Graph layer: CSR builder invariants, reverse graphs, Matrix Market
// round-trips, generator determinism and topology-class properties.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/market.hpp"
#include "graph/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace gunrock::graph {
namespace {

par::ThreadPool& Pool() { return par::ThreadPool::Global(); }

TEST(CsrBuilderTest, SortsAndDeduplicates) {
  Coo coo;
  coo.num_vertices = 4;
  coo.PushEdge(2, 1);
  coo.PushEdge(0, 3);
  coo.PushEdge(0, 1);
  coo.PushEdge(0, 3);  // duplicate
  coo.PushEdge(3, 3);  // self loop
  const auto g = BuildCsr(coo);
  g.Validate();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);  // dup + self loop removed
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_EQ(g.neighbors(0)[1], 3);
  EXPECT_EQ(g.neighbors(2)[0], 1);
}

TEST(CsrBuilderTest, KeepsSelfLoopsAndDuplicatesWhenAsked) {
  Coo coo;
  coo.num_vertices = 3;
  coo.PushEdge(1, 1);
  coo.PushEdge(0, 2);
  coo.PushEdge(0, 2);
  BuildOptions opts;
  opts.remove_self_loops = false;
  opts.remove_duplicates = false;
  const auto g = BuildCsr(coo, opts);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(CsrBuilderTest, SymmetrizeMakesSymmetric) {
  Coo coo;
  coo.num_vertices = 5;
  coo.PushEdge(0, 1);
  coo.PushEdge(1, 2);
  coo.PushEdge(4, 0);
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(coo, opts);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_TRUE(g.IsSymmetric(Pool()));
}

TEST(CsrBuilderTest, FirstDuplicateWeightWinsDeterministically) {
  Coo coo;
  coo.num_vertices = 2;
  coo.PushEdge(0, 1, 5.0f);
  coo.PushEdge(0, 1, 9.0f);
  const auto a = BuildCsr(coo);
  const auto b = BuildCsr(coo);
  ASSERT_EQ(a.num_edges(), 1);
  EXPECT_EQ(a.edge_weight(0), 5.0f);
  EXPECT_EQ(b.edge_weight(0), 5.0f);
}

TEST(CsrBuilderTest, RejectsOutOfRangeEndpoints) {
  Coo coo;
  coo.num_vertices = 2;
  coo.PushEdge(0, 5);
  EXPECT_THROW(BuildCsr(coo), Error);
}

TEST(CsrBuilderTest, WeightsFollowEdgesThroughSymmetrization) {
  Coo coo;
  coo.num_vertices = 3;
  coo.PushEdge(0, 1, 3.5f);
  coo.PushEdge(1, 2, 1.25f);
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(coo, opts);
  ASSERT_TRUE(g.has_weights());
  // Both directions carry the original weight.
  for (eid_t e = g.row_begin(1); e < g.row_end(1); ++e) {
    if (g.edge_dest(e) == 0) {
      EXPECT_EQ(g.edge_weight(e), 3.5f);
    }
    if (g.edge_dest(e) == 2) {
      EXPECT_EQ(g.edge_weight(e), 1.25f);
    }
  }
}

TEST(CsrTest, EdgeSourcesInvertRowOffsets) {
  RmatParams p;
  p.scale = 10;
  const auto g = BuildCsr(GenerateRmat(p, Pool()));
  const auto srcs = g.edge_sources(Pool());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (eid_t e = g.row_begin(v); e < g.row_end(v); ++e) {
      ASSERT_EQ(srcs[static_cast<std::size_t>(e)], v);
    }
  }
}

TEST(CsrTest, ReverseCsrTransposes) {
  Coo coo;
  coo.num_vertices = 4;
  coo.PushEdge(0, 1, 1.0f);
  coo.PushEdge(0, 2, 2.0f);
  coo.PushEdge(3, 1, 3.0f);
  const auto g = BuildCsr(coo);
  const auto rg = ReverseCsr(g, Pool());
  rg.Validate();
  EXPECT_EQ(rg.num_edges(), g.num_edges());
  EXPECT_EQ(rg.degree(1), 2);  // in-edges from 0 and 3
  EXPECT_EQ(rg.degree(0), 0);
  // Weight follows the edge.
  for (eid_t e = rg.row_begin(1); e < rg.row_end(1); ++e) {
    if (rg.edge_dest(e) == 0) {
      EXPECT_EQ(rg.edge_weight(e), 1.0f);
    }
    if (rg.edge_dest(e) == 3) {
      EXPECT_EQ(rg.edge_weight(e), 3.0f);
    }
  }
}

TEST(CsrTest, ReverseOfSymmetricEqualsItself) {
  RmatParams p;
  p.scale = 9;
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(GenerateRmat(p, Pool()), opts);
  const auto rg = ReverseCsr(g, Pool());
  ASSERT_EQ(rg.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.degree(v), rg.degree(v));
  }
}

TEST(CsrTest, RoundTripThroughCoo) {
  RmatParams p;
  p.scale = 8;
  const auto g = BuildCsr(GenerateRmat(p, Pool()));
  const auto coo = CsrToCoo(g, Pool());
  const auto g2 = BuildCsr(coo);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.row_offsets()[g.num_vertices()],
            g.row_offsets()[g.num_vertices()]);
  for (std::size_t i = 0; i < g.col_indices().size(); ++i) {
    ASSERT_EQ(g2.col_indices()[i], g.col_indices()[i]);
  }
}

TEST(MarketIoTest, RoundTripsWeightedGraph) {
  Coo coo;
  coo.num_vertices = 5;
  coo.PushEdge(0, 1, 2.5f);
  coo.PushEdge(2, 4, 7.0f);
  coo.PushEdge(3, 0, 1.0f);
  std::stringstream ss;
  WriteMarket(ss, coo);
  const auto back = ReadMarket(ss);
  EXPECT_EQ(back.num_vertices, 5);
  ASSERT_EQ(back.src.size(), 3u);
  EXPECT_EQ(back.src[1], 2);
  EXPECT_EQ(back.dst[1], 4);
  EXPECT_EQ(back.weight[1], 7.0f);
}

TEST(MarketIoTest, ReadsPatternSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const auto coo = ReadMarket(ss);
  EXPECT_EQ(coo.num_vertices, 3);
  // Off-diagonal expanded both ways; diagonal kept once.
  EXPECT_EQ(coo.src.size(), 3u);
  EXPECT_TRUE(coo.weight.empty());
}

TEST(MarketIoTest, RejectsMalformedInput) {
  std::stringstream no_banner("1 1 0\n");
  EXPECT_THROW(ReadMarket(no_banner), Error);
  std::stringstream bad_field(
      "%%MatrixMarket matrix coordinate complex general\n2 2 0\n");
  EXPECT_THROW(ReadMarket(bad_field), Error);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n");
  EXPECT_THROW(ReadMarket(truncated), Error);
  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_THROW(ReadMarket(out_of_range), Error);
}

TEST(GeneratorTest, RmatIsDeterministicAndSized) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const auto a = GenerateRmat(p, Pool());
  const auto b = GenerateRmat(p, Pool());
  EXPECT_EQ(a.num_vertices, 1 << 12);
  EXPECT_EQ(a.src.size(), static_cast<std::size_t>(8) << 12);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  p.seed = 42;
  const auto c = GenerateRmat(p, Pool());
  EXPECT_NE(a.src, c.src);
}

TEST(GeneratorTest, RmatIsScaleFree) {
  RmatParams p;
  p.scale = 14;
  p.edge_factor = 16;
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(GenerateRmat(p, Pool()), opts);
  const auto stats = ComputeDegreeStats(g, Pool());
  EXPECT_TRUE(IsScaleFreeLike(stats));
  EXPECT_TRUE(ComputeScaleFreeHint(g, Pool()));
  // The paper's characterization: most vertices have degree < 64.
  EXPECT_GT(stats.frac_degree_below_64, 0.6);
  EXPECT_GT(stats.max_degree, 32 * static_cast<eid_t>(stats.mean_degree));
}

TEST(GeneratorTest, RggIsMeshLike) {
  RggParams p;
  p.scale = 13;
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(GenerateRgg(p, Pool()), opts);
  const auto stats = ComputeDegreeStats(g, Pool());
  EXPECT_FALSE(IsScaleFreeLike(stats));
  EXPECT_FALSE(ComputeScaleFreeHint(g, Pool()));
  // Target mean degree ~15 like rgg_n_2_24.
  EXPECT_GT(stats.mean_degree, 8.0);
  EXPECT_LT(stats.mean_degree, 24.0);
}

TEST(GeneratorTest, RoadIsSparseWithLargeDiameter) {
  RoadParams p;
  p.width = 64;
  p.height = 64;
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(GenerateRoad(p, Pool()), opts);
  const auto stats = ComputeDegreeStats(g, Pool());
  EXPECT_LT(stats.mean_degree, 6.0);
  EXPECT_TRUE(g.has_weights());
  EXPECT_GT(PseudoDiameter(g), 32);
}

TEST(GeneratorTest, BipartiteRespectsSides) {
  BipartiteParams p;
  p.num_users = 100;
  p.num_items = 50;
  p.edges_per_user = 5;
  const auto coo = GenerateBipartite(p, Pool());
  EXPECT_EQ(coo.num_vertices, 150);
  EXPECT_EQ(coo.src.size(), 500u);
  for (std::size_t i = 0; i < coo.src.size(); ++i) {
    EXPECT_LT(coo.src[i], 100);
    EXPECT_GE(coo.dst[i], 100);
    EXPECT_LT(coo.dst[i], 150);
  }
}

TEST(GeneratorTest, PlantedPartitionHasExactComponents) {
  PlantedPartitionParams p;
  p.num_clusters = 5;
  p.cluster_size = 100;
  p.inter_edges = 0;
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(GeneratePlantedPartition(p, Pool()), opts);
  // Every intra edge stays within its block of 100 ids.
  const auto srcs = g.edge_sources(Pool());
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(srcs[static_cast<std::size_t>(e)] / 100,
              g.col_indices()[e] / 100);
  }
}

TEST(GeneratorTest, WeightsAreSymmetricAndBounded) {
  RmatParams p;
  p.scale = 10;
  auto coo = GenerateRmat(p, Pool());
  AttachRandomWeights(coo, 1, 64);
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(coo, opts);
  const auto srcs = g.edge_sources(Pool());
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const weight_t w = g.edge_weight(e);
    ASSERT_GE(w, 1.0f);
    ASSERT_LE(w, 64.0f);
    // Reverse edge carries the same weight.
    const vid_t u = srcs[static_cast<std::size_t>(e)];
    const vid_t v = g.col_indices()[e];
    bool found = false;
    for (eid_t r = g.row_begin(v); r < g.row_end(v); ++r) {
      if (g.edge_dest(r) == u && g.edge_weight(r) == w) {
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
}

TEST(StatsTest, DiameterOfPathAndStar) {
  BuildOptions opts;
  opts.symmetrize = true;
  EXPECT_EQ(PseudoDiameter(BuildCsr(MakePath(100), opts)), 99);
  EXPECT_EQ(PseudoDiameter(BuildCsr(MakeStar(50), opts)), 2);
  EXPECT_EQ(PseudoDiameter(BuildCsr(MakeCycle(100), opts)), 50);
}

TEST(StatsTest, DegreeHistogramBucketsPowersOfTwo) {
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(MakeStar(65), opts);  // hub degree 64, leaves 1
  const auto hist = DegreeHistogram(g, Pool());
  EXPECT_EQ(hist[1], 64);  // degree 1 -> bucket [1,2)
  EXPECT_EQ(hist[7], 1);   // degree 64 -> bucket [64,128)
}

TEST(ToyGraphTest, KarateShape) {
  const auto coo = MakeKarate();
  EXPECT_EQ(coo.num_vertices, 34);
  EXPECT_EQ(coo.src.size(), 78u);
  BuildOptions opts;
  opts.symmetrize = true;
  const auto g = BuildCsr(coo, opts);
  EXPECT_EQ(g.num_edges(), 156);
  EXPECT_EQ(g.degree(33), 17);  // instructor
  EXPECT_EQ(g.degree(0), 16);   // president
}

}  // namespace
}  // namespace gunrock::graph
