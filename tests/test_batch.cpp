// Batched multi-source primitives (BfsBatch / PprBatch) vs per-source
// direct runs: the bit-identical-per-lane contract over the shared
// topology corpus, across every push/pull x variant combination, plus
// the per-lane drop (BatchLaneControl) and LaneMaskFrontier semantics
// the engine's coalescing pass relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Karate()
          .Path(257)
          .Star(100)
          .Grid(29, 17)
          .BinaryTree(9)
          .Rmat(11, 8)
          .Road(12, 9)
          .Disconnected(4, 48)
          .Build());
  return *cases;
}

/// 64 deterministic, well-spread sources (duplicates possible and
/// intended on tiny graphs — a coalesced wave may carry repeat queries).
std::vector<vid_t> WaveSources(const graph::Csr& g) {
  return test::SpreadSources(g, kMaxBatchLanes);
}

/// Scalar depth references, one per lane, computed by the classic
/// single-source runner the batch must reproduce exactly.
std::vector<std::vector<std::int32_t>> ScalarDepths(
    const graph::Csr& g, const std::vector<vid_t>& sources,
    bool idempotent) {
  BfsOptions opts;
  opts.compute_preds = false;
  opts.idempotent = idempotent;
  std::vector<std::vector<std::int32_t>> out;
  out.reserve(sources.size());
  for (const vid_t s : sources) {
    out.push_back(Bfs(g, s, opts).depth);
  }
  return out;
}

struct BatchConfig {
  core::Direction direction;
  BfsBatchVariant variant;
};

std::string BatchConfigName(
    const ::testing::TestParamInfo<std::tuple<std::size_t, BatchConfig>>&
        info) {
  const auto& [case_idx, cfg] = info.param;
  std::string name = Cases()[case_idx].name;
  name += "_";
  name += ToString(cfg.direction);
  name += cfg.variant == BfsBatchVariant::kFused ? "_fused" : "_filtered";
  return test::SafeTestName(std::move(name));
}

class BfsBatchParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, BatchConfig>> {
};

TEST_P(BfsBatchParamTest, EveryLaneBitIdenticalToDirectRuns) {
  const auto& [case_idx, cfg] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto sources = WaveSources(c.graph);
  // The per-lane contract holds against both scalar variants (depths are
  // variant-invariant); compare against the idempotent one and spot-check
  // the atomic one on lane 0.
  const auto want = ScalarDepths(c.graph, sources, /*idempotent=*/true);

  BfsBatchOptions opts;
  opts.direction = cfg.direction;
  opts.variant = cfg.variant;
  const auto got = BfsBatch(c.graph, sources, opts);

  ASSERT_EQ(got.depth.size(), sources.size());
  EXPECT_EQ(got.completed_mask, par::LaneMaskOf(sources.size()));
  for (std::size_t l = 0; l < sources.size(); ++l) {
    EXPECT_EQ(got.depth[l], want[l]) << "lane " << l << " source "
                                     << sources[l];
  }

  BfsOptions atomic_opts;
  atomic_opts.compute_preds = false;
  atomic_opts.idempotent = false;
  const auto atomic_ref = Bfs(c.graph, sources[0], atomic_opts);
  EXPECT_EQ(got.depth[0], atomic_ref.depth);
}

TEST_P(BfsBatchParamTest, LaneIterationsMatchScalarRounds) {
  const auto& [case_idx, cfg] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto sources = WaveSources(c.graph);
  BfsBatchOptions opts;
  opts.direction = cfg.direction;
  opts.variant = cfg.variant;
  const auto got = BfsBatch(c.graph, sources, opts);
  BfsOptions sopts;
  sopts.compute_preds = false;
  for (std::size_t l = 0; l < sources.size(); ++l) {
    const auto ref = Bfs(c.graph, sources[l], sopts);
    EXPECT_EQ(got.lane_iterations[l], ref.stats.iterations)
        << "lane " << l;
  }
}

std::vector<std::tuple<std::size_t, BatchConfig>> AllBatchParams() {
  const BatchConfig configs[] = {
      {core::Direction::kPush, BfsBatchVariant::kFused},
      {core::Direction::kPush, BfsBatchVariant::kFiltered},
      {core::Direction::kPull, BfsBatchVariant::kFused},
      {core::Direction::kOptimizing, BfsBatchVariant::kFused},
      {core::Direction::kOptimizing, BfsBatchVariant::kFiltered},
  };
  std::vector<std::tuple<std::size_t, BatchConfig>> params;
  for (std::size_t i = 0; i < Cases().size(); ++i) {
    for (const auto& cfg : configs) params.emplace_back(i, cfg);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Corpus, BfsBatchParamTest,
                         ::testing::ValuesIn(AllBatchParams()),
                         BatchConfigName);

// --- per-lane drop ----------------------------------------------------------

TEST(BfsBatchTest, DroppedLaneLeavesOthersBitIdentical) {
  const auto& c = Cases()[5];  // rmat
  const auto sources = WaveSources(c.graph);
  const auto want = ScalarDepths(c.graph, sources, true);

  const std::uint64_t dropped = (std::uint64_t{1} << 3) |
                                (std::uint64_t{1} << 41);
  std::atomic<int> polls{0};
  BatchLaneControl lanes;
  lanes.keep = [&](std::uint64_t active) {
    return polls.fetch_add(1) >= 2 ? (active & ~dropped) : active;
  };
  BfsBatchOptions opts;
  opts.direction = core::Direction::kOptimizing;
  const auto got = BfsBatch(c.graph, sources, opts, RunControl{}, lanes);

  EXPECT_EQ(got.completed_mask,
            par::LaneMaskOf(sources.size()) & ~dropped);
  for (std::size_t l = 0; l < sources.size(); ++l) {
    if ((got.completed_mask >> l) & 1) {
      EXPECT_EQ(got.depth[l], want[l]) << "lane " << l;
    }
  }
}

TEST(BfsBatchTest, AllLanesDroppedStopsTheWave) {
  const auto& c = Cases()[5];
  const auto sources = WaveSources(c.graph);
  BatchLaneControl lanes;
  lanes.keep = [](std::uint64_t) { return std::uint64_t{0}; };
  const auto got = BfsBatch(c.graph, sources, BfsBatchOptions{},
                            RunControl{}, lanes);
  EXPECT_EQ(got.completed_mask, 0u);
}

TEST(BfsBatchTest, DuplicateSourcesShareDepths) {
  const auto& c = Cases()[0];  // karate
  const std::vector<vid_t> sources = {5, 5, 5, 0};
  const auto got = BfsBatch(c.graph, sources);
  EXPECT_EQ(got.completed_mask, par::LaneMaskOf(4));
  EXPECT_EQ(got.depth[0], got.depth[1]);
  EXPECT_EQ(got.depth[0], got.depth[2]);
  const auto ref = Bfs(c.graph, 5, BfsOptions{}).depth;
  EXPECT_EQ(got.depth[0], ref);
}

TEST(BfsBatchTest, SingleLaneWaveMatchesScalar) {
  const auto& c = Cases()[3];  // grid
  const std::vector<vid_t> sources = {c.source};
  const auto got = BfsBatch(c.graph, sources);
  BfsOptions sopts;
  sopts.compute_preds = false;
  EXPECT_EQ(got.depth[0], Bfs(c.graph, c.source, sopts).depth);
}

TEST(BfsBatchTest, RejectsBadLaneCounts) {
  const auto& c = Cases()[0];
  EXPECT_THROW(BfsBatch(c.graph, std::vector<vid_t>{}), Error);
  EXPECT_THROW(BfsBatch(c.graph, std::vector<vid_t>(65, 0)), Error);
  EXPECT_THROW(BfsBatch(c.graph, std::vector<vid_t>{-1}), Error);
}

TEST(BfsBatchTest, WarmWorkspaceReuseStaysBitIdentical) {
  const auto& c = Cases()[5];
  const auto sources = WaveSources(c.graph);
  const auto want = ScalarDepths(c.graph, sources, true);
  core::Workspace ws;
  RunControl ctl;
  ctl.workspace = &ws;
  BfsBatchOptions opts;
  opts.direction = core::Direction::kOptimizing;
  for (int round = 0; round < 3; ++round) {
    const auto got = BfsBatch(c.graph, sources, opts, ctl);
    for (std::size_t l = 0; l < sources.size(); ++l) {
      ASSERT_EQ(got.depth[l], want[l]) << "round " << round << " lane "
                                       << l;
    }
  }
}

// --- PprBatch ---------------------------------------------------------------

TEST(PprBatchTest, EveryLaneMatchesScalarPpr) {
  const auto& c = Cases()[5];  // rmat
  const auto seeds = test::SpreadSources(c.graph, 16);
  PprBatchOptions opts;
  opts.max_iterations = 30;
  const auto got = PprBatch(c.graph, seeds, opts);
  ASSERT_EQ(got.completed_mask, par::LaneMaskOf(seeds.size()));

  PprOptions sopts;
  sopts.max_iterations = 30;
  for (std::size_t l = 0; l < seeds.size(); ++l) {
    const std::vector<vid_t> seed = {seeds[l]};
    const auto ref = PersonalizedPagerank(c.graph, seed, sopts);
    EXPECT_EQ(got.iterations[l], ref.iterations) << "lane " << l;
    test::ExpectScoresMatch(ref.rank, got.rank[l], "ppr lane");
  }
}

TEST(PprBatchTest, SingleLanePoolIsBitIdentical) {
  // On a one-lane pool every atomic accumulation happens in one fixed
  // order on both sides, so the per-lane contract tightens from
  // tolerance to bitwise equality.
  par::ThreadPool pool(1);
  const auto& c = Cases()[4];  // binary tree
  const auto seeds = test::SpreadSources(c.graph, 8);
  PprBatchOptions opts;
  opts.max_iterations = 25;
  opts.pool = &pool;
  const auto got = PprBatch(c.graph, seeds, opts);

  PprOptions sopts;
  sopts.max_iterations = 25;
  sopts.pool = &pool;
  for (std::size_t l = 0; l < seeds.size(); ++l) {
    const std::vector<vid_t> seed = {seeds[l]};
    const auto ref = PersonalizedPagerank(c.graph, seed, sopts);
    EXPECT_EQ(got.iterations[l], ref.iterations) << "lane " << l;
    EXPECT_EQ(got.rank[l], ref.rank) << "lane " << l
                                     << ": expected bitwise equality";
  }
}

TEST(PprBatchTest, LanesConvergeIndependently) {
  // A disconnected corpus case: seeds in different clusters converge at
  // cluster-local rates; frozen columns must not keep moving.
  const auto& c = Cases()[7];
  const auto seeds = test::SpreadSources(c.graph, 6);
  PprBatchOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 1e-7;
  const auto got = PprBatch(c.graph, seeds, opts);
  PprOptions sopts;
  sopts.max_iterations = 200;
  sopts.tolerance = 1e-7;
  for (std::size_t l = 0; l < seeds.size(); ++l) {
    const std::vector<vid_t> seed = {seeds[l]};
    const auto ref = PersonalizedPagerank(c.graph, seed, sopts);
    EXPECT_EQ(got.iterations[l], ref.iterations) << "lane " << l;
    test::ExpectScoresMatch(ref.rank, got.rank[l], "ppr lane");
  }
}

TEST(PprBatchTest, DroppedLaneKeepsOthersConverging) {
  const auto& c = Cases()[5];
  const auto seeds = test::SpreadSources(c.graph, 8);
  PprBatchOptions opts;
  opts.max_iterations = 30;

  // Pick a victim lane that provably outlives the drop point (isolated
  // seeds converge in one iteration and would complete before the poll
  // fires — a legitimate, but uninteresting, outcome).
  const auto probe = PprBatch(c.graph, seeds, opts);
  std::size_t victim = seeds.size();
  for (std::size_t l = 0; l < seeds.size(); ++l) {
    if (probe.iterations[l] >= 6) victim = l;
  }
  if (victim == seeds.size()) {
    GTEST_SKIP() << "every seed converges too fast to drop mid-run";
  }
  const std::uint64_t dropped = std::uint64_t{1} << victim;
  std::atomic<int> polls{0};
  BatchLaneControl lanes;
  lanes.keep = [&](std::uint64_t active) {
    return polls.fetch_add(1) >= 3 ? (active & ~dropped) : active;
  };
  const auto got = PprBatch(c.graph, seeds, opts, RunControl{}, lanes);
  EXPECT_EQ(got.completed_mask & dropped, 0u);

  PprOptions sopts;
  sopts.max_iterations = 30;
  for (std::size_t l = 0; l < seeds.size(); ++l) {
    if (((got.completed_mask >> l) & 1) == 0) continue;
    const std::vector<vid_t> seed = {seeds[l]};
    const auto ref = PersonalizedPagerank(c.graph, seed, sopts);
    EXPECT_EQ(got.iterations[l], ref.iterations) << "lane " << l;
    test::ExpectScoresMatch(ref.rank, got.rank[l], "ppr lane");
  }
}

// --- LaneMaskFrontier -------------------------------------------------------

TEST(LaneMaskFrontierTest, EpochInvalidatesInO1) {
  par::LaneMaskFrontier f;
  f.Resize(64);
  EXPECT_EQ(f.Load(7), 0u);
  EXPECT_EQ(f.OrBits(7, 0b101), 0u);
  EXPECT_EQ(f.Load(7), 0b101u);
  EXPECT_EQ(f.OrBits(7, 0b010), 0b101u);
  EXPECT_EQ(f.Load(7), 0b111u);
  f.NewEpoch();
  EXPECT_EQ(f.Load(7), 0u);
  EXPECT_EQ(f.OrBits(7, 0b1000), 0u) << "first touch after epoch bump";
  EXPECT_EQ(f.Load(7), 0b1000u);
}

TEST(LaneMaskFrontierTest, ConcurrentOrBitsLoseNothing) {
  auto& pool = par::ThreadPool::Global();
  par::LaneMaskFrontier f;
  const std::size_t n = 512;
  f.Resize(n);
  for (int round = 0; round < 50; ++round) {
    f.NewEpoch();
    std::atomic<int> first_touches{0};
    // 64 logical writers per vertex, scattered across the pool: all bits
    // must land, and exactly one writer per vertex sees prev == 0.
    par::ParallelFor(pool, 0, n * 64, [&](std::size_t i) {
      const std::size_t v = i % n;
      const std::uint64_t bit = std::uint64_t{1} << (i / n);
      if (f.OrBits(v, bit) == 0) {
        first_touches.fetch_add(1, std::memory_order_relaxed);
      }
    });
    ASSERT_EQ(first_touches.load(), static_cast<int>(n));
    for (std::size_t v = 0; v < n; ++v) {
      ASSERT_EQ(f.Load(v), ~std::uint64_t{0}) << "vertex " << v;
    }
  }
}

}  // namespace
}  // namespace gunrock
