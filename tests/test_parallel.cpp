// Parallel runtime and primitives: algebraic properties checked across a
// sweep of sizes and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "parallel/atomics.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/histogram.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/segmented.hpp"
#include "parallel/sort.hpp"
#include "parallel/sorted_search.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"
#include "util/rng.hpp"

namespace gunrock::par {
namespace {

class ParallelSizeTest : public ::testing::TestWithParam<std::size_t> {};

std::vector<std::uint64_t> RandomData(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = SplitMix64(seed + i);
  return data;
}

TEST(ThreadPoolTest, AllRanksRunExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_threads(), 8u);
  std::vector<std::atomic<int>> hits(8);
  pool.Parallel([&](unsigned rank) { hits[rank].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i) {
    pool.Parallel([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 4);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.Parallel([&](unsigned rank) {
        if (rank == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> ok{0};
  pool.Parallel([&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  int x = 0;
  pool.Parallel([&](unsigned rank) {
    EXPECT_EQ(rank, 0u);
    ++x;
  });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPoolTest, PropagatesWhenEveryLaneThrows) {
  ThreadPool pool(4);
  // All lanes throw; exactly one exception must surface (after all lanes
  // completed), and the pool must stay usable.
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(pool.Parallel([&](unsigned rank) {
                   throw std::runtime_error("lane " + std::to_string(rank));
                 }),
                 std::runtime_error);
  }
  std::atomic<int> ok{0};
  pool.Parallel([&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPoolTest, ExceptionOnlyOnSomeLanes) {
  ThreadPool pool(8);
  // Throwing lanes must not strand the quiet ones or wedge the barrier.
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.Parallel([&](unsigned rank) {
                 ran.fetch_add(1);
                 if (rank % 2 == 1) throw std::runtime_error("odd lane");
               }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelIsDetected) {
  ThreadPool pool(4);
  bool threw_logic_error = false;
  try {
    pool.Parallel([&](unsigned rank) {
      if (rank == 0) {
        // A lane re-entering the same pool used to deadlock; it must now
        // be reported as misuse.
        pool.Parallel([](unsigned) {});
      }
    });
  } catch (const std::logic_error&) {
    threw_logic_error = true;
  }
  EXPECT_TRUE(threw_logic_error);
  // The pool survives the misuse report.
  std::atomic<int> ok{0};
  pool.Parallel([&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPoolTest, NestedParallelIsDetectedOnSingleThreadPool) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.Parallel([&](unsigned) { pool.Parallel([](unsigned) {}); }),
      std::logic_error);
  int x = 0;
  pool.Parallel([&](unsigned) { ++x; });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPoolTest, SharedSubmittersSerializeConcurrentLaunches) {
  // The query engine's contract: after AcquireSharedSubmitters, many
  // external threads may call Parallel concurrently; launches serialize
  // and every pass still owns all lanes.
  ThreadPool pool(2);
  pool.AcquireSharedSubmitters();
  constexpr int kSubmitters = 4;
  constexpr int kLaunches = 200;
  std::atomic<int> total{0};
  std::atomic<int> concurrent{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kLaunches; ++i) {
        pool.Parallel([&](unsigned rank) {
          if (rank == 0) {
            // Exactly one pass may be in flight at a time.
            if (concurrent.fetch_add(1) != 0) overlapped.store(true);
            concurrent.fetch_sub(1);
          }
          total.fetch_add(1);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kLaunches * 2);
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPoolTest, SharedSubmittersStillDetectNestedParallel) {
  ThreadPool pool(2);
  pool.AcquireSharedSubmitters();
  bool threw_logic_error = false;
  try {
    pool.Parallel([&](unsigned rank) {
      if (rank == 0) pool.Parallel([](unsigned) {});
    });
  } catch (const std::logic_error&) {
    threw_logic_error = true;
  }
  EXPECT_TRUE(threw_logic_error);
  std::atomic<int> ok{0};
  pool.Parallel([&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadPoolTest, SurvivesParkedWorkersBetweenLaunches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    if (i % 10 == 0) {
      // Long enough for every worker to blow its spin budget and park;
      // the next launch must wake them (no lost-wakeup on the slow path).
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    pool.Parallel([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 4);
}

TEST(WorkspaceTest, SlotBuffersPersistAndKeepCapacity) {
  Workspace ws;
  auto& v = ws.Get<std::vector<int>>(ws::kUserFirst);
  v.assign(1000, 7);
  const int* data = v.data();
  const std::size_t cap = v.capacity();
  // Same slot, same type: identical object, same storage.
  auto& v2 = ws.Get<std::vector<int>>(ws::kUserFirst);
  EXPECT_EQ(&v, &v2);
  EXPECT_EQ(v2.data(), data);
  v2.clear();
  EXPECT_EQ(v2.capacity(), cap);  // clear keeps capacity for reuse
}

TEST(WorkspaceTest, ReferencesStableAcrossOtherSlotGrowth) {
  Workspace ws;
  auto& a = ws.Get<std::vector<int>>(ws::kUserFirst);
  a.assign(64, 1);
  const int* data = a.data();
  // Touch many later slots (forces the slot table to grow/move).
  for (unsigned s = ws::kUserFirst + 1; s < ws::kUserFirst + 40; ++s) {
    ws.Get<std::vector<double>>(s).assign(16, 2.0);
  }
  EXPECT_EQ(a.data(), data);
  EXPECT_EQ(a[0], 1);
}

TEST(WorkspaceTest, TypeChangeReplacesBuffer) {
  Workspace ws;
  ws.Get<std::vector<int>>(ws::kUserFirst).assign(8, 3);
  auto& d = ws.Get<std::vector<double>>(ws::kUserFirst);
  EXPECT_TRUE(d.empty());  // fresh buffer for the new type
  auto& i = ws.Get<std::vector<int>>(ws::kUserFirst);
  EXPECT_TRUE(i.empty());  // the int buffer was dropped, not resurrected
}

TEST(WorkspaceTest, HelpersMatchWorkspaceFreeResults) {
  ThreadPool pool(6);
  Workspace ws;
  const std::size_t n = 50000;
  auto data = RandomData(n, 42);
  for (auto& d : data) d &= 0xffff;
  // Run each helper twice with the shared arena and once without; all
  // three results must agree (reused buffers must be fully overwritten).
  for (int round = 0; round < 2; ++round) {
    std::vector<std::uint64_t> with_ws(n), without(n);
    const auto t1 = TransformExclusiveScan<std::uint64_t>(
        pool, n, with_ws, std::uint64_t{0},
        [&](std::size_t i) { return data[i]; }, &ws);
    const auto t2 = TransformExclusiveScan<std::uint64_t>(
        pool, n, without, std::uint64_t{0},
        [&](std::size_t i) { return data[i]; });
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(with_ws, without);

    std::vector<std::uint64_t> kept_ws(n), kept_plain(n);
    const auto k1 = CopyIf<std::uint64_t>(
        pool, data, kept_ws, [](std::uint64_t d) { return d % 3 == 0; },
        &ws);
    const auto k2 = CopyIf<std::uint64_t>(
        pool, data, kept_plain, [](std::uint64_t d) { return d % 3 == 0; });
    ASSERT_EQ(k1, k2);
    kept_ws.resize(k1);
    kept_plain.resize(k2);
    EXPECT_EQ(kept_ws, kept_plain);
  }
}

TEST(GenerateThreeWayTest, MatchesThreeGenerateIfPasses) {
  ThreadPool pool(6);
  Workspace ws;
  const std::size_t n = 40000;
  const auto cls = [](std::size_t i) {
    const auto h = SplitMix64(i);
    return h % 7 == 0 ? 2 : (h % 3 == 0 ? 1 : 0);
  };
  const auto xform = [](std::size_t i) {
    return static_cast<std::uint32_t>(i);
  };
  std::vector<std::uint32_t> b0(n), b1(n), b2(n);
  const auto sizes = GenerateThreeWay<std::uint32_t>(
      pool, n, {std::span(b0), std::span(b1), std::span(b2)}, cls, xform,
      &ws);
  for (int k = 0; k < 3; ++k) {
    std::vector<std::uint32_t> expect(n);
    const std::size_t kn = GenerateIf(
        pool, n, std::span(expect),
        [&](std::size_t i) { return cls(i) == k; }, xform);
    ASSERT_EQ(sizes[static_cast<std::size_t>(k)], kn) << "class " << k;
    const auto& got = k == 0 ? b0 : (k == 1 ? b1 : b2);
    for (std::size_t i = 0; i < kn; ++i) {
      ASSERT_EQ(got[i], expect[i]) << "class " << k << " index " << i;
    }
  }
}

TEST(AppendIfTest, AppendsExactlyAndPreservesPrefix) {
  ThreadPool pool(6);
  Workspace ws;
  const auto data = RandomData(10000, 9);
  std::vector<std::uint64_t> out = {111, 222};
  const std::size_t kept = AppendIf<std::uint64_t>(
      pool, data, out, [](std::uint64_t d) { return d % 5 == 0; }, &ws);
  std::vector<std::uint64_t> expected = {111, 222};
  for (const auto d : data) {
    if (d % 5 == 0) expected.push_back(d);
  }
  EXPECT_EQ(out, expected);
  EXPECT_EQ(kept + 2, out.size());
}

TEST_P(ParallelSizeTest, ParallelForCoversEveryIndexOnce) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  std::vector<std::atomic<std::uint8_t>> hits(n);
  ParallelFor(pool, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelSizeTest, FixedBlocksPartitionExactly) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  for (const std::size_t nblocks : {1ul, 3ul, 7ul, 16ul}) {
    if (nblocks > std::max<std::size_t>(n, 1)) continue;
    std::vector<std::atomic<std::uint8_t>> hits(n);
    FixedBlocks(pool, n, nblocks,
                [&](std::size_t, std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) {
                    hits[i].fetch_add(1);
                  }
                });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " b=" << nblocks;
    }
  }
}

TEST_P(ParallelSizeTest, ExclusiveScanMatchesSerial) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  auto data = RandomData(n, 1);
  for (auto& d : data) d &= 0xffff;  // avoid overflow
  std::vector<std::uint64_t> got(n), expected(n);
  const auto total = ExclusiveScan<std::uint64_t>(pool, data, got);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = acc;
    acc += data[i];
  }
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelSizeTest, InclusiveScanMatchesSerialAndAliases) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  auto data = RandomData(n, 2);
  for (auto& d : data) d &= 0xffff;
  std::vector<std::uint64_t> expected(n);
  std::partial_sum(data.begin(), data.end(), expected.begin());
  // In-place (aliased) scan.
  InclusiveScan<std::uint64_t>(pool, data, data);
  EXPECT_EQ(data, expected);
}

TEST_P(ParallelSizeTest, ReduceAndCountMatchSerial) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  auto data = RandomData(n, 3);
  std::uint64_t expected_max = 0, expected_sum = 0;
  std::size_t expected_evens = 0;
  for (const auto d : data) {
    expected_max = std::max(expected_max, d);
    expected_sum += d & 0xff;
    expected_evens += (d % 2 == 0) ? 1 : 0;
  }
  EXPECT_EQ(ReduceMax<std::uint64_t>(pool, data, 0), expected_max);
  EXPECT_EQ(TransformReduce(
                pool, n, std::uint64_t{0},
                [](std::uint64_t a, std::uint64_t b) { return a + b; },
                [&](std::size_t i) { return data[i] & 0xff; }),
            expected_sum);
  EXPECT_EQ(CountIf<std::uint64_t>(pool, data,
                                   [](std::uint64_t d) {
                                     return d % 2 == 0;
                                   }),
            expected_evens);
}

TEST_P(ParallelSizeTest, CopyIfIsStableAndExact) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  const auto data = RandomData(n, 4);
  std::vector<std::uint64_t> got(n), expected;
  for (const auto d : data) {
    if (d % 3 == 0) expected.push_back(d);
  }
  const std::size_t kept = CopyIf<std::uint64_t>(
      pool, data, got, [](std::uint64_t d) { return d % 3 == 0; });
  got.resize(kept);
  EXPECT_EQ(got, expected);  // order preserved
}

TEST_P(ParallelSizeTest, RadixSortKeysSorts) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  auto data = RandomData(n, 5);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  RadixSortKeys<std::uint64_t>(pool, data);
  EXPECT_EQ(data, expected);
}

TEST_P(ParallelSizeTest, RadixSortPairsIsStablePermutation) {
  const std::size_t n = GetParam();
  ThreadPool pool(6);
  // Few distinct keys so stability is observable through values.
  std::vector<std::uint32_t> keys(n);
  std::vector<std::uint64_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<std::uint32_t>(SplitMix64(1000 + i) % 7);
    vals[i] = i;
  }
  auto expected_keys = keys;
  std::vector<std::uint64_t> expected_vals(n);
  {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> pairs(n);
    for (std::size_t i = 0; i < n; ++i) pairs[i] = {keys[i], i};
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](auto& a, auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < n; ++i) {
      expected_keys[i] = pairs[i].first;
      expected_vals[i] = pairs[i].second;
    }
  }
  RadixSortPairs<std::uint32_t, std::uint64_t>(pool, keys, vals);
  EXPECT_EQ(keys, expected_keys);
  EXPECT_EQ(vals, expected_vals);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelSizeTest,
                         ::testing::Values(0, 1, 2, 17, 1000, 4096, 65537,
                                           1 << 18));

TEST(SortedSearchTest, FindsOwnersAtBoundaries) {
  ThreadPool pool(4);
  const std::vector<std::int64_t> offsets = {0, 0, 3, 3, 7, 10, 10};
  // Element positions map to the last offset <= position.
  EXPECT_EQ(FindOwner<std::int64_t>(offsets, 0), 1u);   // skips empty seg 0
  EXPECT_EQ(FindOwner<std::int64_t>(offsets, 2), 1u);
  EXPECT_EQ(FindOwner<std::int64_t>(offsets, 3), 3u);   // skips empty seg 2
  EXPECT_EQ(FindOwner<std::int64_t>(offsets, 6), 3u);
  EXPECT_EQ(FindOwner<std::int64_t>(offsets, 7), 4u);
  EXPECT_EQ(FindOwner<std::int64_t>(offsets, 9), 4u);
  const std::vector<std::int64_t> queries = {0, 2, 3, 6, 7, 9};
  std::vector<std::size_t> out(queries.size());
  SortedSearch<std::int64_t>(pool, offsets, queries, out);
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 1, 3, 3, 4, 4}));
}

TEST(SegmentedReduceTest, BothFlavorsMatchSerial) {
  ThreadPool pool(6);
  // Skewed segments, including empties and one giant.
  std::vector<std::int64_t> offsets = {0};
  std::vector<std::size_t> sizes = {0, 5, 0, 10000, 3, 0, 17, 1, 0, 2048};
  for (const auto s : sizes) offsets.push_back(offsets.back() +
                                               static_cast<std::int64_t>(s));
  const std::size_t total = static_cast<std::size_t>(offsets.back());
  std::vector<std::uint64_t> values(total);
  for (std::size_t i = 0; i < total; ++i) values[i] = SplitMix64(i) & 0xff;

  std::vector<std::uint64_t> expected(sizes.size(), 0);
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    for (auto j = offsets[s]; j < offsets[s + 1]; ++j) {
      expected[s] += values[static_cast<std::size_t>(j)];
    }
  }
  const auto add = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  const auto val = [&](std::size_t j) { return values[j]; };

  std::vector<std::uint64_t> got(sizes.size(), 99);
  SegmentedReduceSegmentMapped<std::uint64_t, std::int64_t>(
      pool, offsets, got, std::uint64_t{0}, add, val);
  EXPECT_EQ(got, expected);

  std::fill(got.begin(), got.end(), 99);
  SegmentedReduceBalanced<std::uint64_t, std::int64_t>(
      pool, offsets, got, std::uint64_t{0}, add, val);
  EXPECT_EQ(got, expected);
}

TEST(BitmapTest, TestAndSetClaimsExactlyOnce) {
  ThreadPool pool(8);
  Bitmap bm(100000);
  std::atomic<std::size_t> claims{0};
  ParallelFor(pool, 0, 400000, [&](std::size_t i) {
    if (bm.TestAndSet(i % 100000)) claims.fetch_add(1);
  });
  EXPECT_EQ(claims.load(), 100000u);
  EXPECT_EQ(bm.Count(pool), 100000u);
  bm.Reset(pool);
  EXPECT_EQ(bm.Count(pool), 0u);
}

TEST(EpochBitmapTest, NewEpochInvalidatesEverythingInO1) {
  EpochBitmap set(64);
  EXPECT_FALSE(set.Test(0));  // fresh map is empty without any reset
  set.NewEpoch();
  set.Set(3);
  set.Set(63);
  EXPECT_TRUE(set.Test(3));
  EXPECT_TRUE(set.Test(63));
  EXPECT_FALSE(set.Test(4));
  set.NewEpoch();  // one counter bump, no O(n) clear
  EXPECT_FALSE(set.Test(3));
  EXPECT_FALSE(set.Test(63));
  set.Set(4);
  EXPECT_TRUE(set.Test(4));
  EXPECT_FALSE(set.Test(3));
}

TEST(EpochBitmapTest, MatchesBitmapUnderConcurrentSets) {
  ThreadPool pool(8);
  const std::size_t n = 50000;
  EpochBitmap set(n);
  Bitmap reference(n);
  for (int round = 0; round < 3; ++round) {
    set.NewEpoch();
    reference.Reset(pool);
    const std::size_t stride = 3 + round;
    ParallelFor(pool, 0, n, [&](std::size_t i) {
      if (i % stride == 0) {
        set.Set(i);
        reference.Set(i);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(set.Test(i), reference.Test(i)) << i;
    }
  }
}

TEST(AtomicsTest, MinMaxAddExchangeUnderContention) {
  ThreadPool pool(8);
  std::int64_t min_v = 1 << 30;
  std::int64_t max_v = -(1 << 30);
  std::int64_t sum_v = 0;
  float fsum = 0.0f;
  ParallelFor(pool, 0, 100000, [&](std::size_t i) {
    AtomicMin(&min_v, static_cast<std::int64_t>(i));
    AtomicMax(&max_v, static_cast<std::int64_t>(i));
    AtomicAdd(&sum_v, std::int64_t{1});
    AtomicAdd(&fsum, 1.0f);
  });
  EXPECT_EQ(min_v, 0);
  EXPECT_EQ(max_v, 99999);
  EXPECT_EQ(sum_v, 100000);
  EXPECT_FLOAT_EQ(fsum, 100000.0f);
}

TEST(AtomicsTest, CasClaimsUniquely) {
  ThreadPool pool(8);
  std::int32_t slot = -1;
  std::atomic<int> winners{0};
  ParallelFor(pool, 0, 10000, [&](std::size_t) {
    if (AtomicCas(&slot, std::int32_t{-1}, std::int32_t{7})) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(slot, 7);
}

TEST(HistogramTest, MatchesSerialCounts) {
  ThreadPool pool(6);
  const std::size_t n = 100000;
  std::vector<std::int64_t> bins(16), expected(16, 0);
  for (std::size_t i = 0; i < n; ++i) ++expected[SplitMix64(i) % 16];
  Histogram(pool, n, bins, [](std::size_t i) { return SplitMix64(i) % 16; });
  EXPECT_EQ(bins, expected);
}

TEST(GenerateIfTest, MaterializesIndexSets) {
  ThreadPool pool(6);
  std::vector<std::uint32_t> out(1000);
  const std::size_t kept = GenerateIf(
      pool, 1000, std::span<std::uint32_t>(out),
      [](std::size_t i) { return i % 7 == 0; },
      [](std::size_t i) { return static_cast<std::uint32_t>(i * 2); });
  ASSERT_EQ(kept, 143u);
  for (std::size_t k = 0; k < kept; ++k) {
    EXPECT_EQ(out[k], k * 14);
  }
}

}  // namespace
}  // namespace gunrock::par
