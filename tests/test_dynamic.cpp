// Dynamic-graph subsystem: epoch-versioned snapshots, delta/tombstone
// visibility, compaction, retention, snapshot isolation — and the oracle
// proofs that incrementally maintained BFS/SSSP/CC labels stay
// bit-identical to from-scratch runs across insert bursts, delete
// fallbacks and mixed batches, in-process and through the engine's
// epoch pinning and the daemon's mutation wire ops.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "engine/query_engine.hpp"
#include "gunrock.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "serve/listener.hpp"

namespace gunrock {
namespace {

using dynamic::DynamicGraph;
using dynamic::DynamicGraphOptions;
using dynamic::EdgeUpdate;
using test::ExpectSameDistances;
using test::ExpectSameLabels;

par::ThreadPool& Pool() { return par::ThreadPool::Global(); }

/// Unweighted path 0-1-2-...-(n-1), symmetrized.
graph::Csr PathGraph(vid_t n) {
  graph::Coo coo;
  coo.num_vertices = n;
  for (vid_t v = 0; v + 1 < n; ++v) coo.PushEdge(v, v + 1);
  return test::Undirected(std::move(coo));
}

/// Splits a symmetric corpus graph into a thinned base plus the held-out
/// undirected edges (every `stride`-th one), weights preserved — the
/// held-out set re-inserted through DynamicGraph must reproduce the
/// original graph's labelings exactly.
struct SplitGraph {
  graph::Csr base;
  std::vector<EdgeUpdate> held_out;
};

SplitGraph SplitHeldOut(const graph::Csr& g, int stride) {
  graph::Coo coo;
  coo.num_vertices = g.num_vertices();
  SplitGraph out;
  eid_t undirected_index = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
      const vid_t v = g.edge_dest(e);
      if (u >= v) continue;  // one slot per undirected edge; no self loops
      const weight_t w = g.has_weights() ? g.edge_weight(e) : 1;
      if (undirected_index++ % stride == 0) {
        out.held_out.push_back({u, v, w});
      } else if (g.has_weights()) {
        coo.PushEdge(u, v, w);
      } else {
        coo.PushEdge(u, v);
      }
    }
  }
  graph::BuildOptions build;
  build.symmetrize = true;
  out.base = graph::BuildCsr(coo, build, Pool());
  return out;
}

// --- DynamicGraph mechanics -------------------------------------------------

TEST(DynamicGraphTest, AddRemoveCommitLifecycle) {
  DynamicGraph dyn(PathGraph(6));
  const eid_t base_edges = dyn.Current()->num_edges();
  EXPECT_EQ(dyn.Current()->epoch(), 1u);

  const EdgeUpdate shortcut{0, 5, 1};
  EXPECT_EQ(dyn.AddEdges({&shortcut, 1}), 1u);
  EXPECT_EQ(dyn.AddEdges({&shortcut, 1}), 0u);  // already pending-visible
  const auto info = dyn.Commit();
  EXPECT_TRUE(info.changed);
  EXPECT_EQ(info.epoch, 2u);
  EXPECT_EQ(dyn.Current()->num_edges(), base_edges + 2);  // mirrored

  // Committing with nothing pending is a published no-op.
  const auto noop = dyn.Commit();
  EXPECT_FALSE(noop.changed);
  EXPECT_EQ(noop.epoch, 2u);
  EXPECT_EQ(dyn.Current()->epoch(), 2u);

  // Removing an unknown edge applies nothing; removing the inserted edge
  // restores the base count.
  const EdgeUpdate unknown{1, 4, 1};
  EXPECT_EQ(dyn.RemoveEdges({&unknown, 1}), 0u);
  EXPECT_EQ(dyn.RemoveEdges({&shortcut, 1}), 1u);
  EXPECT_TRUE(dyn.Commit().changed);
  EXPECT_EQ(dyn.Current()->epoch(), 3u);
  EXPECT_EQ(dyn.Current()->num_edges(), base_edges);
}

TEST(DynamicGraphTest, BatchValidationIsAtomic) {
  DynamicGraph dyn(PathGraph(6));
  // One good update, one bad — nothing may apply.
  const std::vector<EdgeUpdate> out_of_range = {{0, 3, 1}, {0, 99, 1}};
  EXPECT_THROW(dyn.AddEdges(out_of_range), Error);
  const std::vector<EdgeUpdate> self_loop = {{0, 3, 1}, {2, 2, 1}};
  EXPECT_THROW(dyn.AddEdges(self_loop), Error);
  const auto stats = dyn.Stats();
  EXPECT_EQ(stats.pending_inserts, 0);
  EXPECT_EQ(stats.pending_removes, 0);
  EXPECT_FALSE(dyn.Commit().changed);
}

TEST(DynamicGraphTest, EmptyDeltaViewIsTheBaseCsrItself) {
  DynamicGraph dyn(PathGraph(8));
  const auto snap = dyn.Current();
  ASSERT_TRUE(snap->delta_empty());
  EXPECT_EQ(snap->View(Pool()).get(), &snap->base());

  const EdgeUpdate e{0, 7, 1};
  dyn.AddEdges({&e, 1});
  dyn.Commit();
  const auto next = dyn.Current();
  ASSERT_FALSE(next->delta_empty());
  EXPECT_NE(next->View(Pool()).get(), &next->base());
  EXPECT_EQ(next->View(Pool())->num_edges(), next->num_edges());
}

TEST(DynamicGraphTest, NetZeroBatchCommitsNothing) {
  DynamicGraph dyn(PathGraph(6));
  const EdgeUpdate e{0, 4, 1};
  EXPECT_EQ(dyn.AddEdges({&e, 1}), 1u);
  EXPECT_EQ(dyn.RemoveEdges({&e, 1}), 1u);  // kills the pending insert
  EXPECT_FALSE(dyn.Commit().changed);
  EXPECT_EQ(dyn.Current()->epoch(), 1u);
}

TEST(DynamicGraphTest, CommitCompactsPastThreshold) {
  DynamicGraphOptions opts;
  opts.compact_threshold = 0.05;
  DynamicGraph dyn(PathGraph(16), opts);
  std::vector<EdgeUpdate> batch;
  for (vid_t v = 2; v < 10; ++v) batch.push_back({0, v, 1});
  dyn.AddEdges(batch);
  const auto info = dyn.Commit();
  EXPECT_TRUE(info.compacted);
  EXPECT_EQ(info.delta_edges, 0);
  const auto stats = dyn.Stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.tombstones, 0);
  // The compacted snapshot serves the merged adjacency as its base.
  const auto snap = dyn.Current();
  EXPECT_TRUE(snap->delta_empty());
  EXPECT_EQ(snap->View(Pool()).get(), &snap->base());
  EXPECT_EQ(snap->num_edges(), 15 * 2 + 8 * 2);
  // Compaction preserves repair eligibility: the insert metadata still
  // rides on the snapshot.
  EXPECT_EQ(snap->inserted_since_parent().size(), 16u);
  EXPECT_EQ(snap->removed_since_parent(), 0u);
}

TEST(DynamicGraphTest, RetentionWindowAgesOutOldEpochs) {
  DynamicGraphOptions opts;
  opts.retain_snapshots = 2;
  DynamicGraph dyn(PathGraph(32), opts);
  for (vid_t v = 2; v <= 4; ++v) {
    const EdgeUpdate e{0, v, 1};
    dyn.AddEdges({&e, 1});
    dyn.Commit();
  }
  EXPECT_EQ(dyn.Current()->epoch(), 4u);
  EXPECT_EQ(dyn.SnapshotAt(4)->epoch(), 4u);
  EXPECT_EQ(dyn.SnapshotAt(3)->epoch(), 3u);
  EXPECT_THROW(dyn.SnapshotAt(2), Error);
  EXPECT_THROW(dyn.SnapshotAt(1), Error);
  EXPECT_THROW(dyn.SnapshotAt(99), Error);
}

TEST(DynamicGraphTest, SnapshotsAreIsolatedFromLaterMutations) {
  graph::Csr g = PathGraph(24);
  DynamicGraph dyn(std::move(g));
  const auto before = dyn.Current();
  const auto depth_before = Bfs(*before->View(Pool()), 0).depth;
  const eid_t edges_before = before->num_edges();

  const EdgeUpdate shortcut{0, 23, 1};
  dyn.AddEdges({&shortcut, 1});
  dyn.Commit();

  // The old snapshot still answers exactly as it did pre-mutation.
  EXPECT_EQ(before->num_edges(), edges_before);
  ExpectSameLabels(depth_before, Bfs(*before->View(Pool()), 0).depth);
  // The new one sees the shortcut.
  EXPECT_EQ(Bfs(*dyn.Current()->View(Pool()), 0).depth[23], 1);
  EXPECT_EQ(depth_before[23], 23);
}

// --- incremental == from-scratch across the corpus --------------------------

std::vector<test::TopologyCase> Corpus() {
  return test::CorpusBuilder()
      .Weighted(true)
      .Karate()
      .Path(64)
      .Grid(8, 8)
      .BinaryTree(6)
      .Rmat(8, 8)
      .Disconnected(3, 16)
      .Build();
}

/// Checks all three maintainers against from-scratch runs on `snap`.
void ExpectMatchesFromScratch(const dynamic::Snapshot& snap, vid_t source,
                              const dynamic::IncrementalBfs& bfs,
                              const dynamic::IncrementalSssp& sssp,
                              const dynamic::IncrementalCc& cc) {
  const auto view = snap.View(Pool());
  BfsOptions bfs_opts;
  bfs_opts.compute_preds = false;
  ExpectSameLabels(Bfs(*view, source, bfs_opts).depth, bfs.depth());
  SsspOptions sssp_opts;
  sssp_opts.compute_preds = false;
  ExpectSameDistances(Sssp(*view, source, sssp_opts).dist, sssp.dist());
  const CcResult oracle_cc = Cc(*view);
  ExpectSameLabels(oracle_cc.component, cc.component());
  EXPECT_EQ(oracle_cc.num_components, cc.num_components());
}

TEST(IncrementalOracleTest, InsertBurstsRepairToFromScratchLabels) {
  for (const auto& tc : Corpus()) {
    SCOPED_TRACE(tc.name);
    SplitGraph split = SplitHeldOut(tc.graph, /*stride=*/4);
    ASSERT_FALSE(split.held_out.empty());
    DynamicGraph dyn(std::move(split.base));

    dynamic::IncrementalBfs bfs(dyn.Current(), tc.source);
    dynamic::IncrementalSssp sssp(dyn.Current(), tc.source);
    dynamic::IncrementalCc cc(dyn.Current());
    ExpectMatchesFromScratch(*dyn.Current(), tc.source, bfs, sssp, cc);

    // Re-insert the held-out edges in bursts, one commit per burst.
    const std::size_t burst =
        std::max<std::size_t>(1, split.held_out.size() / 3);
    std::uint64_t commits = 0;
    for (std::size_t i = 0; i < split.held_out.size(); i += burst) {
      const std::size_t count =
          std::min(burst, split.held_out.size() - i);
      dyn.AddEdges({split.held_out.data() + i, count});
      if (!dyn.Commit().changed) continue;
      ++commits;
      bfs.Update(dyn.Current());
      sssp.Update(dyn.Current());
      cc.Update(dyn.Current());
      ExpectMatchesFromScratch(*dyn.Current(), tc.source, bfs, sssp, cc);
    }
    // Every commit was insert-only: repaired, never recomputed (beyond
    // the constructors' initial full runs).
    EXPECT_EQ(bfs.stats().repairs, commits);
    EXPECT_EQ(bfs.stats().full_recomputes, 1u);
    EXPECT_EQ(sssp.stats().repairs, commits);
    EXPECT_EQ(cc.stats().repairs, commits);
  }
}

TEST(IncrementalOracleTest, DeletesAndMixedBatchesFallBackCorrectly) {
  for (const auto& tc : Corpus()) {
    SCOPED_TRACE(tc.name);
    SplitGraph split = SplitHeldOut(tc.graph, /*stride=*/5);
    ASSERT_FALSE(split.held_out.empty());
    DynamicGraph dyn(std::move(split.base));
    dynamic::IncrementalBfs bfs(dyn.Current(), tc.source);
    dynamic::IncrementalSssp sssp(dyn.Current(), tc.source);
    dynamic::IncrementalCc cc(dyn.Current());

    // Delete-only epoch: pick survivors out of the current base.
    std::vector<EdgeUpdate> removals;
    const graph::Csr& base = dyn.Current()->base();
    eid_t seen = 0;
    for (vid_t u = 0; u < base.num_vertices() && removals.size() < 4; ++u) {
      for (eid_t e = base.row_begin(u); e < base.row_end(u); ++e) {
        const vid_t v = base.edge_dest(e);
        if (u < v && seen++ % 7 == 0) removals.push_back({u, v, 1});
      }
    }
    ASSERT_FALSE(removals.empty());
    EXPECT_GT(dyn.RemoveEdges(removals), 0u);
    ASSERT_TRUE(dyn.Commit().changed);
    bfs.Update(dyn.Current());
    sssp.Update(dyn.Current());
    cc.Update(dyn.Current());
    ExpectMatchesFromScratch(*dyn.Current(), tc.source, bfs, sssp, cc);
    EXPECT_EQ(bfs.stats().full_recomputes, 2u);  // ctor + delete fallback
    EXPECT_EQ(bfs.stats().repairs, 0u);

    // Mixed epoch: inserts and removals together also force recompute.
    std::vector<EdgeUpdate> inserts(split.held_out.begin(),
                                    split.held_out.begin() + 1);
    dyn.AddEdges(inserts);
    dyn.RemoveEdges({removals.data() + removals.size() - 1, 1});
    if (dyn.Commit().changed) {
      bfs.Update(dyn.Current());
      sssp.Update(dyn.Current());
      cc.Update(dyn.Current());
      ExpectMatchesFromScratch(*dyn.Current(), tc.source, bfs, sssp, cc);
    }

    // Skipping an epoch (stale maintainer) also falls back — and still
    // converges to from-scratch.
    dyn.AddEdges({split.held_out.data() + 1, 1});
    dyn.Commit();
    if (split.held_out.size() > 2) {
      dyn.AddEdges({split.held_out.data() + 2, 1});
      dyn.Commit();
    }
    bfs.Update(dyn.Current());  // parent gap: recompute path
    sssp.Update(dyn.Current());
    cc.Update(dyn.Current());
    ExpectMatchesFromScratch(*dyn.Current(), tc.source, bfs, sssp, cc);
  }
}

TEST(IncrementalOracleTest, RepairsStayCorrectAcrossCompaction) {
  DynamicGraphOptions opts;
  opts.compact_threshold = 0.02;  // compact on nearly every commit
  auto cases = test::CorpusBuilder().Weighted(true).Rmat(8, 4).Build();
  ASSERT_EQ(cases.size(), 1u);
  SplitGraph split = SplitHeldOut(cases[0].graph, /*stride=*/3);
  DynamicGraph dyn(std::move(split.base), opts);
  dynamic::IncrementalBfs bfs(dyn.Current(), cases[0].source);
  dynamic::IncrementalSssp sssp(dyn.Current(), cases[0].source);
  dynamic::IncrementalCc cc(dyn.Current());
  for (std::size_t i = 0; i < split.held_out.size(); i += 8) {
    const std::size_t count = std::min<std::size_t>(
        8, split.held_out.size() - i);
    dyn.AddEdges({split.held_out.data() + i, count});
    if (!dyn.Commit().changed) continue;
    bfs.Update(dyn.Current());
    sssp.Update(dyn.Current());
    cc.Update(dyn.Current());
    ExpectMatchesFromScratch(*dyn.Current(), cases[0].source, bfs, sssp,
                             cc);
  }
  EXPECT_GT(dyn.Stats().compactions, 0u);
  EXPECT_EQ(bfs.stats().full_recomputes, 1u);  // compaction != fallback
}

// --- engine integration: epoch pinning and concurrent queries ---------------

graph::Csr EngineGraph() {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 5000 + test::TestSeed();
  auto coo = graph::GenerateRmat(p, Pool());
  graph::AttachRandomWeights(coo, 1, 64, test::TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

TEST(DynamicEngineTest, EpochPinnedQueriesSeePreMutationResults) {
  engine::QueryEngine engine;
  auto dyn = std::make_shared<DynamicGraph>(EngineGraph());
  engine.RegisterDynamicGraph("g", dyn);

  engine::BfsQuery bfs;
  bfs.source = 1;
  bfs.opts.compute_preds = false;
  const auto before =
      std::get<BfsResult>(engine.Submit("g", bfs).Wait().result);

  // Mutate: connect vertex 1 to a spread of targets, then commit.
  std::vector<EdgeUpdate> batch;
  for (vid_t v : test::SpreadSources(*dyn->Current()->View(Pool()), 8)) {
    if (v != 1) batch.push_back({1, v, 1});
  }
  ASSERT_GT(dyn->AddEdges(batch), 0u);
  const auto info = dyn->Commit();
  ASSERT_TRUE(info.changed);

  // Latest-epoch query sees the new edges; the pinned query answers
  // exactly as before the mutation.
  const auto after =
      std::get<BfsResult>(engine.Submit("g", bfs).Wait().result);
  engine::SubmitOptions pinned;
  pinned.epoch = 1;
  const auto replay =
      std::get<BfsResult>(engine.Submit("g", bfs, pinned).Wait().result);
  ExpectSameLabels(before.depth, replay.depth);
  EXPECT_NE(before.depth, after.depth);

  // Pinning an unretained epoch is a submit-time error; so is pinning on
  // a static graph.
  engine::SubmitOptions unretained;
  unretained.epoch = 99;
  EXPECT_THROW(engine.Submit("g", bfs, unretained), Error);
  engine.RegisterGraph("static", EngineGraph());
  EXPECT_THROW(engine.Submit("static", bfs, pinned), Error);
}

TEST(DynamicEngineTest, ConcurrentQueriesSurviveMutationStorm) {
  engine::QueryEngine engine;
  auto dyn = std::make_shared<DynamicGraph>(EngineGraph());
  engine.RegisterDynamicGraph("g", dyn);
  const vid_t n = dyn->num_vertices();

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    vid_t next = 2;
    while (!stop.load()) {
      std::vector<EdgeUpdate> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back({0, static_cast<vid_t>(1 + (next++ % (n - 1))), 1});
      }
      dyn->AddEdges(batch);
      dyn->Commit();
    }
  });

  engine::BfsQuery bfs;
  bfs.source = 0;
  engine::CcQuery cc;
  for (int round = 0; round < 24; ++round) {
    auto h1 = engine.Submit("g", bfs);
    auto h2 = engine.Submit("g", cc);
    EXPECT_EQ(h1.Wait().status, engine::QueryStatus::kDone);
    EXPECT_EQ(h2.Wait().status, engine::QueryStatus::kDone);
  }
  stop.store(true);
  mutator.join();
  engine.Shutdown();
}

// --- daemon wire ops --------------------------------------------------------

/// Minimal line client (the full matrix lives in test_daemon.cpp).
class WireClient {
 public:
  explicit WireClient(int port) {
    std::string error;
    socket_ = serve::ConnectTcp("127.0.0.1", port, &error);
    EXPECT_TRUE(socket_.valid()) << error;
  }
  serve::Json RoundTrip(const serve::Json& request) {
    EXPECT_TRUE(socket_.WriteAll(request.Dump() + "\n"));
    const auto line = socket_.ReadLine();
    EXPECT_TRUE(line.has_value());
    std::string error;
    auto parsed = serve::Json::Parse(line.value_or("null"), &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    return parsed.value_or(serve::Json());
  }

 private:
  serve::Socket socket_;
};

double Num(const serve::Json& o, const char* key) {
  const serve::Json* v = o.Find(key);
  return v && v->is_number() ? v->as_number() : -1.0;
}

std::string Str(const serve::Json& o, const char* key) {
  const serve::Json* v = o.Find(key);
  return v && v->is_string() ? v->as_string() : std::string();
}

TEST(DynamicDaemonTest, MutationOpsRoundTripWithErrorDiscipline) {
  serve::DaemonConfig config;
  config.inflight = 2;
  serve::Daemon daemon(std::move(config));
  daemon.AddDynamicGraph("dyn", PathGraph(16));
  daemon.AddGraph("fixed", PathGraph(16));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  WireClient client(daemon.port());

  const auto parse = [](const char* text) {
    std::string why;
    auto parsed = serve::Json::Parse(text, &why);
    EXPECT_TRUE(parsed.has_value()) << why;
    return parsed.value_or(serve::Json());
  };

  // add_edges applies and reports; the duplicate is ignored, not an error.
  auto reply = client.RoundTrip(parse(
      R"({"op":"add_edges","graph":"dyn","edges":[[0,5],[0,5]],"tag":"a"})"));
  EXPECT_EQ(Str(reply, "op"), "mutated");
  EXPECT_EQ(Num(reply, "applied"), 1.0);
  EXPECT_EQ(Num(reply, "ignored"), 1.0);
  EXPECT_EQ(Str(reply, "tag"), "a");

  reply = client.RoundTrip(
      parse(R"({"op":"commit","graph":"dyn","tag":"c"})"));
  EXPECT_EQ(Str(reply, "op"), "committed");
  EXPECT_EQ(Num(reply, "epoch"), 2.0);
  const serve::Json* changed = reply.Find("changed");
  ASSERT_NE(changed, nullptr);
  EXPECT_TRUE(changed->is_bool() && changed->as_bool());

  // The committed shortcut changes BFS; an epoch-1 pin replays the
  // pre-mutation answer.
  reply = client.RoundTrip(parse(
      R"({"op":"query","graph":"dyn","kind":"bfs","source":0,"values":true})"));
  EXPECT_EQ(Str(reply, "status"), "done");
  const auto depth_of = [](const serve::Json& response,
                           std::size_t v) -> double {
    const serve::Json* result = response.Find("result");
    const serve::Json* depth = result ? result->Find("depth") : nullptr;
    if (!depth || depth->as_array().size() <= v) return -2.0;
    return depth->as_array()[v].as_number();
  };
  EXPECT_EQ(depth_of(reply, 5), 1.0);
  reply = client.RoundTrip(parse(
      R"({"op":"query","graph":"dyn","kind":"bfs","source":0,)"
      R"("values":true,"epoch":1})"));
  EXPECT_EQ(Str(reply, "status"), "done");
  EXPECT_EQ(depth_of(reply, 5), 5.0);

  // remove_edges round trip.
  reply = client.RoundTrip(parse(
      R"({"op":"remove_edges","graph":"dyn","edges":[[0,5]],"tag":"r"})"));
  EXPECT_EQ(Str(reply, "op"), "mutated");
  EXPECT_EQ(Num(reply, "applied"), 1.0);

  // Error discipline: static graph, malformed edges, bad epoch pin —
  // each a per-request error, never a dropped connection.
  reply = client.RoundTrip(parse(
      R"({"op":"add_edges","graph":"fixed","edges":[[0,5]]})"));
  EXPECT_EQ(Str(reply, "op"), "error");
  EXPECT_NE(Str(reply, "error").find("not dynamic"), std::string::npos);
  reply = client.RoundTrip(
      parse(R"({"op":"add_edges","graph":"dyn","edges":[[0]]})"));
  EXPECT_EQ(Str(reply, "op"), "error");
  reply = client.RoundTrip(
      parse(R"({"op":"add_edges","graph":"dyn","edges":[[0,99]]})"));
  EXPECT_EQ(Str(reply, "op"), "error");
  EXPECT_NE(Str(reply, "error").find("out of range"), std::string::npos);
  reply = client.RoundTrip(parse(
      R"({"op":"query","graph":"dyn","kind":"bfs","source":0,"epoch":77})"));
  EXPECT_EQ(Str(reply, "op"), "error");
  reply = client.RoundTrip(parse(
      R"({"op":"query","graph":"fixed","kind":"bfs","source":0,"epoch":1})"));
  EXPECT_EQ(Str(reply, "op"), "error");
  reply = client.RoundTrip(
      parse(R"({"op":"commit","graph":"dyn","edges":[[0,1]]})"));
  EXPECT_EQ(Str(reply, "op"), "error");  // commit takes no edges

  // The connection still works after every error.
  reply = client.RoundTrip(parse(R"({"op":"ping"})"));
  EXPECT_EQ(Str(reply, "op"), "pong");

  // Per-graph gauges on the stats page.
  const std::string stats = daemon.StatsText();
  EXPECT_NE(stats.find("dynamic_epoch{graph=\"dyn\"}"), std::string::npos);
  EXPECT_NE(stats.find("dynamic_commits{graph=\"dyn\"}"),
            std::string::npos);
  EXPECT_EQ(stats.find("dynamic_epoch{graph=\"fixed\"}"),
            std::string::npos);
  daemon.Stop();
}

}  // namespace
}  // namespace gunrock
