// Many-to-many SSSP distance tables: SsspBatch's bit-identical-per-lane
// contract against N direct Sssp runs over the weighted topology corpus,
// under both MatrixBackends, plus the numeric edge cases the matrix
// workload must hold exactly — zero-weight edges, unreachable targets
// (inf cells), per-lane drops mid-wave, warm-workspace reuse — and the
// engine MatrixQuery layered on top (wave formation, epoch pinning,
// cancel/deadline mid-wave).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;

graph::Coo ZeroWeightCoo() {
  // A path with alternating zero/positive weights plus a zero-weight
  // triangle: exercises equal-candidate relaxations (cand == old must
  // not re-enqueue) and zero-cost multi-hop paths.
  graph::Coo coo;
  coo.num_vertices = 10;
  coo.PushEdge(0, 1, 0);
  coo.PushEdge(1, 2, 3);
  coo.PushEdge(2, 3, 0);
  coo.PushEdge(3, 4, 5);
  coo.PushEdge(4, 5, 0);
  coo.PushEdge(5, 6, 0);
  coo.PushEdge(6, 7, 2);
  coo.PushEdge(7, 0, 0);
  coo.PushEdge(0, 8, 0);
  coo.PushEdge(8, 9, 0);
  coo.PushEdge(9, 0, 0);
  return coo;
}

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Weighted(true)
          .Karate()
          .Path(257)
          .Star(100)
          .Grid(29, 17)
          .BinaryTree(9)
          .Rmat(11, 8)
          .Road(12, 9)
          .Disconnected(4, 48)
          .Custom("zero_weight", ZeroWeightCoo())
          .Build());
  return *cases;
}

/// 64 deterministic, well-spread sources (duplicates possible and
/// intended on tiny graphs — a matrix wave may carry repeat rows).
std::vector<vid_t> WaveSources(const graph::Csr& g) {
  return test::SpreadSources(g, kMaxBatchLanes);
}

/// Scalar distance references, one per lane — the exact labels the batch
/// must reproduce bitwise.
std::vector<std::vector<weight_t>> ScalarDists(
    const graph::Csr& g, const std::vector<vid_t>& sources) {
  SsspOptions opts;
  opts.compute_preds = false;
  std::vector<std::vector<weight_t>> out;
  out.reserve(sources.size());
  for (const vid_t s : sources) {
    out.push_back(Sssp(g, s, opts).dist);
  }
  return out;
}

std::string MatrixConfigName(
    const ::testing::TestParamInfo<std::tuple<std::size_t, MatrixBackend>>&
        info) {
  const auto& [case_idx, backend] = info.param;
  std::string name = Cases()[case_idx].name;
  name += backend == MatrixBackend::kSpmv ? "_spmv" : "_frontier";
  return test::SafeTestName(std::move(name));
}

class SsspBatchParamTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, MatrixBackend>> {};

TEST_P(SsspBatchParamTest, EveryLaneBitIdenticalToDirectRuns) {
  const auto& [case_idx, backend] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto sources = WaveSources(c.graph);
  const auto want = ScalarDists(c.graph, sources);

  SsspBatchOptions opts;
  opts.backend = backend;
  const auto got = SsspBatch(c.graph, sources, opts);

  ASSERT_EQ(got.dist.size(), sources.size());
  EXPECT_EQ(got.completed_mask, par::LaneMaskOf(sources.size()));
  for (std::size_t l = 0; l < sources.size(); ++l) {
    EXPECT_EQ(got.dist[l], want[l]) << "lane " << l << " source "
                                    << sources[l];
  }
}

TEST_P(SsspBatchParamTest, UnreachableTargetsStayInfinite) {
  const auto& [case_idx, backend] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto sources = WaveSources(c.graph);
  SsspBatchOptions opts;
  opts.backend = backend;
  const auto got = SsspBatch(c.graph, sources, opts);
  SsspOptions sopts;
  sopts.compute_preds = false;
  for (std::size_t l = 0; l < sources.size(); ++l) {
    const auto ref = Sssp(c.graph, sources[l], sopts);
    for (std::size_t v = 0; v < ref.dist.size(); ++v) {
      if (ref.dist[v] == kInfinity) {
        ASSERT_EQ(got.dist[l][v], kInfinity)
            << "lane " << l << " vertex " << v;
      }
    }
  }
}

std::vector<std::tuple<std::size_t, MatrixBackend>> AllMatrixParams() {
  std::vector<std::tuple<std::size_t, MatrixBackend>> params;
  for (std::size_t i = 0; i < Cases().size(); ++i) {
    params.emplace_back(i, MatrixBackend::kFrontier);
    params.emplace_back(i, MatrixBackend::kSpmv);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SsspBatchParamTest,
                         ::testing::ValuesIn(AllMatrixParams()),
                         MatrixConfigName);

// --- primitive edge cases ---------------------------------------------------

TEST(SsspBatchTest, DroppedLaneLeavesOthersBitIdentical) {
  const auto& c = Cases()[5];  // rmat
  const auto sources = WaveSources(c.graph);
  const auto want = ScalarDists(c.graph, sources);

  const std::uint64_t dropped =
      (std::uint64_t{1} << 3) | (std::uint64_t{1} << 41);
  for (const auto backend :
       {MatrixBackend::kFrontier, MatrixBackend::kSpmv}) {
    std::atomic<int> polls{0};
    BatchLaneControl lanes;
    lanes.keep = [&](std::uint64_t active) {
      return polls.fetch_add(1) >= 2 ? (active & ~dropped) : active;
    };
    SsspBatchOptions opts;
    opts.backend = backend;
    const auto got =
        SsspBatch(c.graph, sources, opts, RunControl{}, lanes);
    EXPECT_EQ(got.completed_mask & dropped, 0u);
    for (std::size_t l = 0; l < sources.size(); ++l) {
      if ((got.completed_mask >> l) & 1) {
        EXPECT_EQ(got.dist[l], want[l]) << "lane " << l;
      }
    }
  }
}

TEST(SsspBatchTest, AllLanesDroppedStopsTheWave) {
  const auto& c = Cases()[5];
  const auto sources = WaveSources(c.graph);
  BatchLaneControl lanes;
  lanes.keep = [](std::uint64_t) { return std::uint64_t{0}; };
  for (const auto backend :
       {MatrixBackend::kFrontier, MatrixBackend::kSpmv}) {
    SsspBatchOptions opts;
    opts.backend = backend;
    const auto got =
        SsspBatch(c.graph, sources, opts, RunControl{}, lanes);
    EXPECT_EQ(got.completed_mask, 0u);
  }
}

TEST(SsspBatchTest, DuplicateSourcesShareDistances) {
  const auto& c = Cases()[0];  // karate
  const std::vector<vid_t> sources = {5, 5, 5, 0};
  const auto got = SsspBatch(c.graph, sources);
  EXPECT_EQ(got.completed_mask, par::LaneMaskOf(4));
  EXPECT_EQ(got.dist[0], got.dist[1]);
  EXPECT_EQ(got.dist[0], got.dist[2]);
  SsspOptions sopts;
  sopts.compute_preds = false;
  EXPECT_EQ(got.dist[0], Sssp(c.graph, 5, sopts).dist);
}

TEST(SsspBatchTest, TinyDeltaStillTerminates) {
  // A denormal-small Δ makes the classic threshold += Δ schedule stall
  // (threshold + Δ rounds back to threshold); the hardened window jump
  // must still converge to the same labels.
  const auto& c = Cases()[3];  // grid
  const auto sources = test::SpreadSources(c.graph, 8);
  const auto want = ScalarDists(c.graph, sources);
  SsspBatchOptions opts;
  opts.backend = MatrixBackend::kFrontier;
  opts.delta = 1e-30f;
  const auto got = SsspBatch(c.graph, sources, opts);
  EXPECT_EQ(got.completed_mask, par::LaneMaskOf(sources.size()));
  for (std::size_t l = 0; l < sources.size(); ++l) {
    EXPECT_EQ(got.dist[l], want[l]) << "lane " << l;
  }
}

TEST(SsspBatchTest, RejectsBadLaneCountsAndUnweightedGraphs) {
  const auto& c = Cases()[0];
  EXPECT_THROW(SsspBatch(c.graph, std::vector<vid_t>{}), Error);
  EXPECT_THROW(SsspBatch(c.graph, std::vector<vid_t>(65, 0)), Error);
  EXPECT_THROW(SsspBatch(c.graph, std::vector<vid_t>{-1}), Error);
  const auto unweighted = test::Undirected(graph::MakePath(8));
  EXPECT_THROW(SsspBatch(unweighted, std::vector<vid_t>{0}), Error);
}

TEST(SsspBatchTest, WarmWorkspaceReuseStaysBitIdentical) {
  const auto& c = Cases()[5];
  const auto sources = WaveSources(c.graph);
  const auto want = ScalarDists(c.graph, sources);
  core::Workspace ws;
  RunControl ctl;
  ctl.workspace = &ws;
  for (const auto backend :
       {MatrixBackend::kFrontier, MatrixBackend::kSpmv,
        MatrixBackend::kFrontier}) {
    SsspBatchOptions opts;
    opts.backend = backend;
    const auto got = SsspBatch(c.graph, sources, opts, ctl);
    for (std::size_t l = 0; l < sources.size(); ++l) {
      ASSERT_EQ(got.dist[l], want[l]) << "lane " << l;
    }
  }
}

TEST(SsspDeltaHeuristicTest, DegenerateInputsFallBackToOne) {
  auto& pool = par::ThreadPool::Global();
  // Edgeless graph: the unguarded heuristic computed 0/0 = NaN and fed
  // it through std::max (order-dependent result).
  graph::Coo empty;
  empty.num_vertices = 5;
  const auto edgeless = graph::BuildCsr(empty);
  EXPECT_EQ(SsspDeltaHeuristic(edgeless, pool), 1.0f);

  // All-zero weights: mean weight 0 is meaningless as a bucket width.
  graph::Coo zeros;
  zeros.num_vertices = 3;
  zeros.PushEdge(0, 1, 0.0f);
  zeros.PushEdge(1, 2, 0.0f);
  EXPECT_EQ(SsspDeltaHeuristic(test::Undirected(std::move(zeros)), pool),
            1.0f);

  // A non-finite weight (an unvalidated ingest path can produce one)
  // poisons the mean; the guard pins Δ = 1 instead of Δ = inf.
  graph::Coo inf_w;
  inf_w.num_vertices = 3;
  inf_w.PushEdge(0, 1, kInfinity);
  inf_w.PushEdge(1, 2, 2.0f);
  EXPECT_EQ(SsspDeltaHeuristic(test::Undirected(std::move(inf_w)), pool),
            1.0f);

  // Sanity: a healthy graph still gets the real Davidson value.
  graph::Coo ok;
  ok.num_vertices = 3;
  ok.PushEdge(0, 1, 4.0f);
  ok.PushEdge(1, 2, 4.0f);
  EXPECT_GT(SsspDeltaHeuristic(test::Undirected(std::move(ok)), pool),
            1.0f);
}

TEST(SsspDeltaHeuristicTest, ScalarTinyDeltaStillTerminates) {
  // The scalar runner shares the hardened window jump: a denormal Δ on a
  // long-diameter mesh must terminate with the default-Δ labels.
  const auto& c = Cases()[3];  // grid
  SsspOptions opts;
  opts.compute_preds = false;
  const auto want = Sssp(c.graph, c.source, opts);
  opts.delta = 1e-30f;
  const auto got = Sssp(c.graph, c.source, opts);
  EXPECT_EQ(got.dist, want.dist);
}

// --- MatrixQuery: the engine layer ------------------------------------------

TEST_P(SsspBatchParamTest, RunMatrixTableBitIdenticalAcrossWaveSplits) {
  const auto& [case_idx, backend] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto sources = WaveSources(c.graph);
  const auto want = ScalarDists(c.graph, sources);
  const auto n = static_cast<std::size_t>(c.graph.num_vertices());

  engine::MatrixQuery q;
  q.sources = sources;
  q.opts.backend = backend;
  for (const std::uint32_t wave : {std::uint32_t{64}, std::uint32_t{7}}) {
    q.wave = wave;
    const auto r = engine::RunMatrix(c.graph, q);
    ASSERT_EQ(r.num_sources, sources.size());
    ASSERT_EQ(r.num_targets, n);
    EXPECT_EQ(r.waves, (sources.size() + wave - 1) / wave);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const std::span<const weight_t> row(r.table.data() + i * n, n);
      ASSERT_TRUE(std::equal(row.begin(), row.end(), want[i].begin()))
          << c.name << " wave=" << wave << " row " << i;
    }
  }
}

TEST(MatrixQueryTest, TargetSubsetProjectsExactCells) {
  const auto& c = Cases()[5];  // rmat
  const auto sources = test::SpreadSources(c.graph, 9);
  const auto want = ScalarDists(c.graph, sources);
  engine::MatrixQuery q;
  q.sources = sources;
  q.targets = test::SpreadSources(c.graph, 17);
  const auto r = engine::RunMatrix(c.graph, q);
  ASSERT_EQ(r.num_targets, q.targets.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = 0; j < q.targets.size(); ++j) {
      EXPECT_EQ(r.table[i * r.num_targets + j],
                want[i][static_cast<std::size_t>(q.targets[j])]);
    }
  }
}

TEST(MatrixQueryTest, PathExtractionWitnessesTheTableDistance) {
  for (const std::size_t case_idx : {std::size_t{0}, std::size_t{8}}) {
    const auto& c = Cases()[case_idx];  // karate + zero-weight plateaus
    const auto sources = test::SpreadSources(c.graph, 4);
    engine::MatrixQuery q;
    q.sources = sources;
    for (const vid_t s : sources) {
      q.paths.emplace_back(s, static_cast<vid_t>(0));
      q.paths.emplace_back(s, c.graph.num_vertices() - 1);
    }
    const auto r = engine::RunMatrix(c.graph, q);
    ASSERT_EQ(r.paths.size(), q.paths.size());
    for (std::size_t k = 0; k < q.paths.size(); ++k) {
      const auto [s, t] = q.paths[k];
      const std::size_t lane = static_cast<std::size_t>(
          std::find(sources.begin(), sources.end(), s) - sources.begin());
      const weight_t d =
          r.table[lane * r.num_targets + static_cast<std::size_t>(t)];
      const auto& path = r.paths[k];
      if (d == kInfinity) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_FALSE(path.empty()) << c.name << " pair " << s << "->" << t;
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      // Re-fold the path edge by edge with the same float order the
      // labels used; the fold must land exactly on the table cell.
      weight_t acc = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        bool found = false;
        for (eid_t e = c.graph.row_begin(path[i]);
             e < c.graph.row_end(path[i]); ++e) {
          if (c.graph.edge_dest(e) == path[i + 1]) {
            acc = acc + c.graph.edge_weight(e);
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found) << "path hop " << path[i] << "->" << path[i + 1]
                           << " is not an edge";
      }
      EXPECT_EQ(acc, d);
    }
  }
}

TEST(MatrixQueryTest, WaveWidthPolicy) {
  // Non-scale-free topologies opt out of wave formation entirely (the
  // BFS-wave gate); the coalescing budget caps lanes elsewhere.
  EXPECT_EQ(engine::MatrixWaveWidth(1 << 20, false, 256u << 20), 1u);
  EXPECT_EQ(engine::MatrixWaveWidth(1 << 10, true, 256u << 20), 64u);
  // 64n fixed + 8n/lane: a budget of 96n holds exactly 4 lanes.
  const vid_t n = 1 << 20;
  EXPECT_EQ(engine::MatrixWaveWidth(
                n, true, static_cast<std::size_t>(n) * 96),
            4u);
  // Budget below the fixed cost: solo lanes, never zero.
  EXPECT_EQ(engine::MatrixWaveWidth(n, true, 1024), 1u);
}

TEST(MatrixQueryTest, EngineSubmitMatchesDirectRuns) {
  const auto& c = Cases()[5];  // rmat: the registry hint enables waves
  const auto sources = test::SpreadSources(c.graph, 24);
  const auto want = ScalarDists(c.graph, sources);

  engine::QueryEngine eng;
  eng.RegisterGraph("g", c.graph);
  engine::MatrixQuery q;
  q.sources = sources;
  q.targets = test::SpreadSources(c.graph, 8);
  const auto resp = eng.Submit("g", q).Wait();
  ASSERT_EQ(resp.status, engine::QueryStatus::kDone) << resp.error;
  const auto& r = std::get<engine::MatrixResult>(resp.result);
  EXPECT_GE(r.waves, 1u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = 0; j < q.targets.size(); ++j) {
      EXPECT_EQ(r.table[i * r.num_targets + j],
                want[i][static_cast<std::size_t>(q.targets[j])]);
    }
  }

  // Out-of-range members surface the canonical per-request error.
  engine::MatrixQuery bad = q;
  bad.targets.push_back(c.graph.num_vertices());
  const auto bad_resp = eng.Submit("g", bad).Wait();
  EXPECT_EQ(bad_resp.status, engine::QueryStatus::kFailed);
  EXPECT_NE(bad_resp.error.find("out of range"), std::string::npos);
}

TEST(MatrixQueryTest, CancelAndDeadlineStopTheQueryMidWave) {
  const auto& c = Cases()[5];
  engine::QueryEngineOptions eopts;
  eopts.max_in_flight = 1;  // one runner: the second submit stays queued
  engine::QueryEngine eng(eopts);
  eng.RegisterGraph("g", c.graph);

  engine::MatrixQuery big;
  big.sources = WaveSources(c.graph);
  big.wave = 1;  // 64 sequential waves: plenty of checkpoints to stop at

  auto running = eng.Submit("g", big);
  auto queued = eng.Submit("g", big);
  queued.Cancel();  // still waiting behind the single runner
  EXPECT_EQ(queued.Wait().status, engine::QueryStatus::kCancelled);
  running.Cancel();
  const auto rs = running.Wait().status;
  EXPECT_TRUE(rs == engine::QueryStatus::kCancelled ||
              rs == engine::QueryStatus::kDone);

  engine::SubmitOptions dl;
  dl.deadline_ms = 0.01;  // expires before the first wave finishes
  const auto late = eng.Submit("g", big, dl).Wait();
  EXPECT_TRUE(late.status == engine::QueryStatus::kDeadlineExceeded ||
              late.status == engine::QueryStatus::kDone);
}

TEST(MatrixQueryTest, EpochPinnedTablesSurviveLaterCommits) {
  // Base: a weighted path 0-1-2-3-4-5 (weight 4 per hop, mirrored).
  graph::Coo coo;
  coo.num_vertices = 6;
  for (vid_t v = 0; v + 1 < 6; ++v) coo.PushEdge(v, v + 1, 4.0f);
  auto dyn = std::make_shared<dynamic::DynamicGraph>(
      test::Undirected(std::move(coo)));

  engine::QueryEngine eng;
  eng.RegisterDynamicGraph("d", dyn);
  engine::MatrixQuery q;
  q.sources = {0, 5};

  const auto before =
      eng.Submit("d", q).Wait();  // resolves epoch 1 (latest)
  ASSERT_EQ(before.status, engine::QueryStatus::kDone) << before.error;
  const auto& t1 = std::get<engine::MatrixResult>(before.result);
  EXPECT_EQ(t1.table[0 * 6 + 5], 20.0f);  // 5 hops of weight 4

  // Commit a shortcut that halves the 0..5 distance.
  const dynamic::EdgeUpdate shortcut{0, 5, 2.0f};
  dyn->AddEdges({&shortcut, 1});
  ASSERT_TRUE(dyn->Commit().changed);

  engine::SubmitOptions pin1;
  pin1.epoch = 1;
  const auto pinned = eng.Submit("d", q, pin1).Wait();
  ASSERT_EQ(pinned.status, engine::QueryStatus::kDone) << pinned.error;
  const auto& t1again = std::get<engine::MatrixResult>(pinned.result);
  // Bit-identical to the pre-commit table: same epoch, same adjacency.
  EXPECT_EQ(t1.table, t1again.table);

  const auto after = eng.Submit("d", q).Wait();  // latest = epoch 2
  ASSERT_EQ(after.status, engine::QueryStatus::kDone) << after.error;
  const auto& t2 = std::get<engine::MatrixResult>(after.result);
  EXPECT_EQ(t2.table[0 * 6 + 5], 2.0f);
  EXPECT_EQ(t2.table[1 * 6 + 0], 2.0f);  // mirrored edge, row of source 5
}

}  // namespace
}  // namespace gunrock
