// Merge-path SpMV/SpMM oracle suite.
//
// Four layers of claims, checked against serial oracles over the shared
// topology corpus (steered by GUNROCK_TEST_SEED like every other suite):
//  1. the merge-path partition covers every (row, nonzero) cell exactly
//     once, boundaries sit on their diagonals, and the cut is a pure
//     function of the structure;
//  2. the kernels are bitwise pool-width-invariant, exact semirings
//     (min-plus, or-and) reproduce the serial row-major fold bitwise,
//     and the (+,*) double semiring matches it to seam-rounding;
//  3. masked / sparse-frontier variants agree with the dense kernel on
//     member rows and never touch non-members;
//  4. the primitive backends (PageRank, HITS, PPR, PprBatch) built on
//     the kernels agree with their frontier/push counterparts, and SpMM
//     lanes are bit-identical to scalar SpMV runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using core::MinPlus;
using core::OrAnd;
using core::PlusTimes;
using test::TopologyCase;

/// The structural corpus every kernel test sweeps: hand-sized cases with
/// empty-ish rows (star leaves, path ends), a mesh, a planted-cluster
/// disconnected case, and a power-law RMAT whose hub rows are the whole
/// point of the merge-path split.
std::vector<TopologyCase> Corpus(bool weighted) {
  return test::CorpusBuilder()
      .Weighted(weighted)
      .Karate()
      .Path(63)
      .Star(129)
      .Grid(17, 11)
      .Disconnected(3, 40)
      .Rmat(10, 16)
      .Build();
}

/// Cross-backend score comparison. Unlike test::ExpectScoresMatch (which
/// demands bitwise equality on a single-lane pool — right for engine-vs-
/// direct runs of the *same* kernel), two backends legitimately differ in
/// last-ulp rounding: the spmv kernel refolds rows at chunk seams where
/// the frontier operators fold row-major.
void ExpectBackendsAgree(const std::vector<double>& a,
                         const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(b[v], a[v], 1e-9 * (1.0 + std::abs(a[v])))
        << what << " vertex " << v;
  }
}

std::vector<double> RandomVector(std::size_t n, std::uint64_t salt) {
  std::mt19937_64 rng(test::TestSeed() * 1315423911u + salt);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n);
  for (double& v : x) v = dist(rng);
  return x;
}

/// Serial row-major oracle: the plain fold every kernel claim is pinned
/// against. Weighted graphs apply S::Mul(weight, x[col]).
template <typename S>
std::vector<typename S::Value> SerialSpmv(
    const graph::Csr& a, std::span<const typename S::Value> x) {
  using T = typename S::Value;
  const auto offs = a.row_offsets();
  const auto cols = a.col_indices();
  const auto w = a.weights();
  std::vector<T> y(static_cast<std::size_t>(a.num_vertices()));
  for (std::size_t r = 0; r < y.size(); ++r) {
    T acc = S::Identity();
    for (auto e = static_cast<std::size_t>(offs[r]);
         e < static_cast<std::size_t>(offs[r + 1]); ++e) {
      const T xv = x[static_cast<std::size_t>(cols[e])];
      acc = S::Add(acc, w.empty() ? xv : S::Mul(static_cast<T>(w[e]), xv));
    }
    y[r] = acc;
  }
  return y;
}

// --- 1. partition invariants ------------------------------------------------

TEST(MergePathPartitionTest, CoversEveryCellExactlyOnceOnEveryDiagonal) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const auto offs = c.graph.row_offsets();
    const auto row_ends = offs.subspan(1);
    const std::size_t rows = row_ends.size();
    const std::size_t nnz = static_cast<std::size_t>(c.graph.num_edges());
    const std::size_t work = rows + nnz;

    const std::size_t chunk_counts[] = {1, 3, 7, par::MergePathChunks(rows, nnz),
                                        64};
    for (const std::size_t k : chunk_counts) {
      std::vector<par::MergeCoord> cut;
      par::MergePathPartition(row_ends, nnz, k, cut);
      ASSERT_EQ(cut.size(), k + 1);
      EXPECT_EQ(cut.front().row, 0u);
      EXPECT_EQ(cut.front().nnz, 0u);
      EXPECT_EQ(cut.back().row, rows);
      EXPECT_EQ(cut.back().nnz, nnz);
      for (std::size_t i = 1; i < k; ++i) {
        const par::MergeCoord b = cut[i];
        // The boundary sits exactly on its diagonal...
        EXPECT_EQ(b.row + b.nnz, work * i / k) << "chunk " << i;
        // ...and is a valid merge-path coordinate: every earlier row is
        // fully consumed, the current row not overshot.
        if (b.row > 0) {
          EXPECT_LE(static_cast<std::size_t>(row_ends[b.row - 1]), b.nnz);
        }
        if (b.row < rows) {
          EXPECT_LE(b.nnz, static_cast<std::size_t>(row_ends[b.row]));
        }
        // Monotone in both components => half-open chunk cell ranges
        // tile the path: every cell is owned by exactly one chunk.
        EXPECT_GE(cut[i].row, cut[i - 1].row);
        EXPECT_GE(cut[i].nnz, cut[i - 1].nnz);
      }
      std::size_t cells = 0;
      for (std::size_t i = 0; i < k; ++i) {
        cells += (cut[i + 1].row - cut[i].row) + (cut[i + 1].nnz - cut[i].nnz);
      }
      EXPECT_EQ(cells, work);
    }
  }
}

// --- 2. kernel vs serial oracle ---------------------------------------------

TEST(SpmvKernelTest, PlusTimesPoolWidthInvariantAndOracleClose) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const std::size_t n = static_cast<std::size_t>(c.graph.num_vertices());
    const auto x = RandomVector(n, 1);
    const auto oracle = SerialSpmv<PlusTimes>(c.graph, x);

    std::vector<std::vector<double>> runs;
    for (const unsigned width : {1u, 2u, 8u}) {
      par::ThreadPool pool(width);
      std::vector<double> y(n, -1.0);
      core::SpmvSemiring<PlusTimes>(pool, c.graph, x, std::span<double>(y),
                                    nullptr, 0);
      runs.push_back(std::move(y));
    }
    // Bitwise identical at every pool width (the partition and the seam
    // fold never see the thread count)...
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
    // ...and equal to the serial row fold up to the seam-refold rounding
    // of rows split across chunks.
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_NEAR(runs[0][v], oracle[v], 1e-12 * std::max(1.0, oracle[v]))
          << "vertex " << v;
    }
  }
}

TEST(SpmvKernelTest, ExactSemiringsMatchSerialOracleBitwise) {
  // min-plus candidates (x[u] + w) are each computed once and compared —
  // no fold-order rounding exists, so the kernel must equal the serial
  // oracle bitwise; same for or-and.
  for (const auto& c : Corpus(/*weighted=*/true)) {
    SCOPED_TRACE(c.name);
    const std::size_t n = static_cast<std::size_t>(c.graph.num_vertices());

    std::mt19937_64 rng(test::TestSeed() + 17);
    std::vector<weight_t> xd(n);
    std::uniform_int_distribution<int> di(0, 1000);
    for (auto& v : xd) v = static_cast<weight_t>(di(rng));
    const auto want_min = SerialSpmv<MinPlus>(c.graph, xd);

    std::vector<std::uint8_t> xb(n);
    for (auto& v : xb) v = static_cast<std::uint8_t>(di(rng) & 1);

    for (const unsigned width : {1u, 2u, 8u}) {
      par::ThreadPool pool(width);
      std::vector<weight_t> ymin(n);
      core::SpmvSemiring<MinPlus>(pool, c.graph, xd, std::span<weight_t>(ymin),
                                  nullptr, 0);
      EXPECT_EQ(ymin, want_min) << "width " << width;
    }

    // Or-and over the unweighted view of the same structure.
    const graph::Csr& g = c.graph;
    const auto cols = g.col_indices();
    const auto want_or = [&] {
      std::vector<std::uint8_t> y(n);
      const auto offs = g.row_offsets();
      for (std::size_t r = 0; r < n; ++r) {
        std::uint8_t acc = 0;
        for (auto e = static_cast<std::size_t>(offs[r]);
             e < static_cast<std::size_t>(offs[r + 1]); ++e) {
          acc |= xb[static_cast<std::size_t>(cols[e])];
        }
        y[r] = acc;
      }
      return y;
    }();
    for (const unsigned width : {1u, 2u, 8u}) {
      par::ThreadPool pool(width);
      std::vector<std::uint8_t> y(n, 255);
      core::SpmvMergePath<std::uint8_t>(
          pool, g.row_offsets(), std::span<std::uint8_t>(y), OrAnd::Identity(),
          [](std::uint8_t a, std::uint8_t b) { return OrAnd::Add(a, b); },
          [&](std::size_t e) { return xb[static_cast<std::size_t>(cols[e])]; },
          [](std::size_t, std::uint8_t acc) { return acc; }, nullptr, 0);
      EXPECT_EQ(y, want_or) << "width " << width;
    }
  }
}

TEST(SpmvKernelTest, EmptyRowsSelfLoopsAndIsolatedVerticesGetIdentity) {
  // Directed build (no symmetrize): vertex 0 keeps an empty row, 7 is
  // fully isolated, 1 carries a self-loop, 2 is a hub.
  graph::Coo coo;
  coo.num_vertices = 10;
  coo.PushEdge(1, 1);  // self-loop
  for (vid_t v = 3; v < 10; ++v) coo.PushEdge(2, v);  // hub row
  coo.PushEdge(4, 2);
  coo.PushEdge(5, 1);
  graph::BuildOptions bopts;
  bopts.symmetrize = false;
  bopts.remove_self_loops = false;
  const graph::Csr g = graph::BuildCsr(coo, bopts);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  const auto x = RandomVector(n, 2);
  const auto oracle = SerialSpmv<PlusTimes>(g, x);
  par::ThreadPool pool(4);
  std::vector<double> y(n);
  core::SpmvSemiring<PlusTimes>(pool, g, x, std::span<double>(y), nullptr, 0);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(y[v], oracle[v]) << "vertex " << v;
  }
  EXPECT_EQ(y[0], 0.0);  // empty row folds to the identity
  EXPECT_EQ(y[7], 0.0);  // isolated vertex likewise
  EXPECT_DOUBLE_EQ(y[1], x[1]);  // the self-loop contributes exactly once

  std::vector<weight_t> xi(n, weight_t{5});
  std::vector<weight_t> ymin(n);
  core::SpmvSemiring<MinPlus>(pool, g, xi, std::span<weight_t>(ymin), nullptr,
                              0);
  EXPECT_EQ(ymin[0], kInfinity);  // min over nothing is the identity
  EXPECT_EQ(ymin[7], kInfinity);
}

// --- 3. masked and sparse variants ------------------------------------------

TEST(SpmvKernelTest, DenseMaskMatchesUnmaskedBitwiseOnMemberRows) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const graph::Csr& g = c.graph;
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    const auto cols = g.col_indices();
    const auto x = RandomVector(n, 3);

    par::ThreadPool pool(4);
    std::vector<double> dense(n);
    core::SpmvSemiring<PlusTimes>(pool, g, x, std::span<double>(dense),
                                  nullptr, 0);

    par::EpochBitmap mask(n);
    mask.NewEpoch();
    std::mt19937_64 rng(test::TestSeed() + 29);
    std::vector<bool> member(n);
    for (std::size_t v = 0; v < n; ++v) {
      member[v] = (rng() & 3) != 0;  // ~75% membership: seams stay masked
      if (member[v]) mask.Set(v);
    }
    constexpr double kSentinel = -7.25;
    std::vector<double> masked(n, kSentinel);
    core::SpmvMergePathMasked<double>(
        pool, g.row_offsets(), mask, std::span<double>(masked), 0.0,
        [](double a, double b) { return a + b; },
        [&](std::size_t e) { return x[static_cast<std::size_t>(cols[e])]; },
        [](std::size_t, double acc) { return acc; }, nullptr, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (member[v]) {
        // Same partition, same seams: member rows are bitwise equal.
        EXPECT_EQ(masked[v], dense[v]) << "vertex " << v;
      } else {
        EXPECT_EQ(masked[v], kSentinel) << "vertex " << v;
      }
    }
  }
}

TEST(SpmvKernelTest, SparseRowsVariantSweepsOnlySelectedRows) {
  for (const auto& c : Corpus(/*weighted=*/true)) {
    SCOPED_TRACE(c.name);
    const graph::Csr& g = c.graph;
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    const auto cols = g.col_indices();
    const auto w = g.weights();

    std::mt19937_64 rng(test::TestSeed() + 31);
    std::vector<weight_t> x(n);
    std::uniform_int_distribution<int> di(0, 500);
    for (auto& v : x) v = static_cast<weight_t>(di(rng));
    const auto dense = SerialSpmv<MinPlus>(g, x);

    std::vector<vid_t> rows;
    std::vector<bool> selected(n);
    for (std::size_t v = 0; v < n; ++v) {
      if ((rng() & 7) == 0) {  // ~12%: a genuinely sparse frontier
        rows.push_back(static_cast<vid_t>(v));
        selected[v] = true;
      }
    }

    par::ThreadPool pool(4);
    constexpr weight_t kSentinel = weight_t{-3};
    std::vector<weight_t> y(n, kSentinel);
    core::SpmvMergePathRows<weight_t>(
        pool, g.row_offsets(), rows, std::span<weight_t>(y),
        MinPlus::Identity(),
        [](weight_t a, weight_t b) { return MinPlus::Add(a, b); },
        [&](std::size_t e) {
          return MinPlus::Mul(static_cast<weight_t>(w[e]),
                              x[static_cast<std::size_t>(cols[e])]);
        },
        [](std::size_t, weight_t acc) { return acc; }, nullptr, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (selected[v]) {
        EXPECT_EQ(y[v], dense[v]) << "vertex " << v;  // exact semiring
      } else {
        EXPECT_EQ(y[v], kSentinel) << "vertex " << v;
      }
    }
  }
}

// --- 2b. semiring iterations vs traversal primitives ------------------------

TEST(SpmvSemiringTest, MinPlusFixpointEqualsSsspDistances) {
  // Jacobi Bellman-Ford: dist' = min(dist, A (min,+) dist) to fixpoint.
  // Integer [1,64] weights keep every path sum exact in float, so the
  // fixpoint must equal Sssp's distances bitwise.
  for (const auto& c : Corpus(/*weighted=*/true)) {
    SCOPED_TRACE(c.name);
    const graph::Csr& g = c.graph;  // symmetric: g is its own reverse
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    par::ThreadPool pool(4);
    par::Workspace ws;

    std::vector<weight_t> dist(n, kInfinity);
    dist[static_cast<std::size_t>(c.source)] = weight_t{0};
    std::vector<weight_t> relaxed(n);
    for (std::size_t round = 0; round < n; ++round) {
      core::SpmvSemiring<MinPlus>(pool, g, dist, std::span<weight_t>(relaxed),
                                  &ws, 0);
      bool changed = false;
      for (std::size_t v = 0; v < n; ++v) {
        const weight_t next = MinPlus::Add(dist[v], relaxed[v]);
        changed |= next != dist[v];
        dist[v] = next;
      }
      if (!changed) break;
    }

    const auto want = Sssp(g, c.source);
    EXPECT_EQ(dist, want.dist);
  }
}

TEST(SpmvSemiringTest, OrAndFixpointEqualsBfsReachability) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const graph::Csr& g = c.graph;
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    par::ThreadPool pool(4);
    par::Workspace ws;

    std::vector<std::uint8_t> reach(n, 0);
    reach[static_cast<std::size_t>(c.source)] = 1;
    std::vector<std::uint8_t> next(n);
    const auto want = Bfs(g, c.source);
    for (std::size_t round = 0; round < n; ++round) {
      core::SpmvSemiring<OrAnd>(pool, g, reach,
                                std::span<std::uint8_t>(next), &ws, 0);
      bool changed = false;
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint8_t merged = reach[v] | next[v];
        changed |= merged != reach[v];
        reach[v] = merged;
      }
      // After k sweeps, reach is exactly the depth <= k ball.
      for (std::size_t v = 0; v < n; ++v) {
        const bool within = want.depth[v] >= 0 &&
                            static_cast<std::size_t>(want.depth[v]) <= round + 1;
        EXPECT_EQ(reach[v] != 0, within)
            << "vertex " << v << " round " << round;
      }
      if (!changed) break;
    }
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(reach[v] != 0, want.depth[v] >= 0) << "vertex " << v;
    }
  }
}

// --- 4. SpMM and primitive backends -----------------------------------------

TEST(SpmmKernelTest, EveryLaneBitIdenticalToScalarRunFrozenLanesUntouched) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const graph::Csr& g = c.graph;
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    const auto cols = g.col_indices();
    constexpr std::size_t kLanes = 5;
    const std::uint64_t running = 0b10111;  // lane 3 frozen mid-batch

    std::vector<std::vector<double>> x;
    for (std::size_t l = 0; l < kLanes; ++l) {
      x.push_back(RandomVector(n, 100 + l));
    }

    for (const unsigned width : {1u, 8u}) {
      par::ThreadPool pool(width);
      par::Workspace ws;
      constexpr double kSentinel = -42.0;
      std::vector<double> y(n * kLanes, kSentinel);
      core::SpmmMergePath<double>(
          pool, g.row_offsets(), std::span<double>(y), kLanes, running, 0.0,
          [](double a, double b) { return a + b; },
          [&](std::size_t e, std::size_t l) {
            return x[l][static_cast<std::size_t>(cols[e])];
          },
          [](std::size_t, std::size_t, double acc) { return acc; }, &ws, 0);

      for (std::size_t l = 0; l < kLanes; ++l) {
        if (((running >> l) & 1) == 0) {
          for (std::size_t v = 0; v < n; ++v) {
            EXPECT_EQ(y[v * kLanes + l], kSentinel) << "frozen lane touched";
          }
          continue;
        }
        std::vector<double> scalar(n);
        core::SpmvMergePath<double>(
            pool, g.row_offsets(), std::span<double>(scalar), 0.0,
            [](double a, double b) { return a + b; },
            [&](std::size_t e) {
              return x[l][static_cast<std::size_t>(cols[e])];
            },
            [](std::size_t, double acc) { return acc; }, &ws, 0);
        for (std::size_t v = 0; v < n; ++v) {
          EXPECT_EQ(y[v * kLanes + l], scalar[v])
              << "lane " << l << " vertex " << v << " width " << width;
        }
      }
    }
  }
}

TEST(SpmvBackendTest, PagerankSpmvMatchesFrontierPull) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    PagerankOptions opts;
    opts.pull = true;
    opts.max_iterations = 25;
    opts.tolerance = 0.0;  // both backends run the full budget
    opts.backend = core::SpmvBackend::kFrontier;
    const auto frontier = Pagerank(c.graph, opts);
    opts.backend = core::SpmvBackend::kSpmv;
    const auto spmv = Pagerank(c.graph, opts);
    EXPECT_EQ(spmv.iterations, frontier.iterations);
    ExpectBackendsAgree(frontier.rank, spmv.rank, "pagerank backend");
  }
}

TEST(SpmvBackendTest, HitsAndSalsaSpmvMatchScatterGather) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const graph::Csr& g = c.graph;  // symmetric: rg == g structurally
    HitsOptions hopts;
    hopts.max_iterations = 15;
    hopts.tolerance = 0.0;
    hopts.backend = core::SpmvBackend::kFrontier;
    const auto hf = Hits(g, g, hopts);
    hopts.backend = core::SpmvBackend::kSpmv;
    const auto hs = Hits(g, g, hopts);
    EXPECT_EQ(hs.iterations, hf.iterations);
    ExpectBackendsAgree(hf.authority, hs.authority, "hits authority");
    ExpectBackendsAgree(hf.hub, hs.hub, "hits hub");

    SalsaOptions sopts;
    sopts.max_iterations = 15;
    sopts.tolerance = 0.0;
    sopts.backend = core::SpmvBackend::kFrontier;
    const auto sf = Salsa(g, g, sopts);
    sopts.backend = core::SpmvBackend::kSpmv;
    const auto ss = Salsa(g, g, sopts);
    EXPECT_EQ(ss.iterations, sf.iterations);
    ExpectBackendsAgree(sf.authority, ss.authority, "salsa authority");
    ExpectBackendsAgree(sf.hub, ss.hub, "salsa hub");
  }
}

TEST(SpmvBackendTest, PprSpmvMatchesPush) {
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const auto seeds = test::SpreadSources(c.graph, 3);
    PprOptions opts;
    opts.max_iterations = 20;
    opts.tolerance = 0.0;
    opts.backend = core::SpmvBackend::kFrontier;
    const auto push = PersonalizedPagerank(c.graph, seeds, opts);
    opts.backend = core::SpmvBackend::kSpmv;  // symmetric: reverse == g
    const auto spmv = PersonalizedPagerank(c.graph, seeds, opts);
    EXPECT_EQ(spmv.iterations, push.iterations);
    ExpectBackendsAgree(push.rank, spmv.rank, "ppr backend");
  }
}

TEST(SpmvBackendTest, PprBatchSpmmLaneBitIdenticalToScalarSpmvBackend) {
  // The SpMM backend's contract is stronger than push-mode's "same
  // rounding spread": lane l must be *bitwise* the scalar spmv-backend
  // run at any pool width, because both walk the same partition and fold
  // the same seams in the same order.
  for (const auto& c : Corpus(/*weighted=*/false)) {
    SCOPED_TRACE(c.name);
    const auto seeds = test::SpreadSources(c.graph, 4);
    PprBatchOptions bopts;
    bopts.max_iterations = 15;
    bopts.backend = core::SpmvBackend::kSpmv;
    const auto batch = PprBatch(c.graph, seeds, bopts);
    ASSERT_EQ(batch.completed_mask, (std::uint64_t{1} << seeds.size()) - 1);

    PprOptions sopts;
    sopts.max_iterations = 15;
    sopts.tolerance = bopts.tolerance;
    sopts.damping = bopts.damping;
    sopts.backend = core::SpmvBackend::kSpmv;
    for (std::size_t l = 0; l < seeds.size(); ++l) {
      const vid_t seed[] = {seeds[l]};
      const auto scalar = PersonalizedPagerank(c.graph, seed, sopts);
      EXPECT_EQ(batch.iterations[l], scalar.iterations) << "lane " << l;
      EXPECT_EQ(batch.rank[l], scalar.rank) << "lane " << l;
    }
  }
}

TEST(SpmvKernelTest, WarmWorkspaceAllocatesNothingInSteadyState) {
  const auto corpus = Corpus(/*weighted=*/false);
  const graph::Csr& g = corpus.back().graph;  // the RMAT case
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const auto x = RandomVector(n, 9);
  std::vector<double> y(n);

  par::ThreadPool pool(4);
  par::Workspace ws;
  core::SpmvSemiring<PlusTimes>(pool, g, x, std::span<double>(y), &ws, 0);
  const std::size_t warm = ws.creations();
  for (int i = 0; i < 3; ++i) {
    core::SpmvSemiring<PlusTimes>(pool, g, x, std::span<double>(y), &ws, 0);
  }
  EXPECT_EQ(ws.creations(), warm) << "steady-state iteration allocated";
}

}  // namespace
}  // namespace gunrock
