// Matrix Market reader/writer: round-trips, comment and 1-based-index
// handling, symmetric expansion, and malformed-input error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Coo Parse(const std::string& text) {
  std::istringstream in(text);
  return graph::ReadMarket(in);
}

TEST(MarketReadTest, PatternGeneral) {
  const auto coo = Parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  EXPECT_EQ(coo.num_vertices, 3);
  ASSERT_EQ(coo.num_edges(), 2);
  EXPECT_FALSE(coo.has_weights());
  // 1-based input becomes 0-based storage.
  EXPECT_EQ(coo.src[0], 0);
  EXPECT_EQ(coo.dst[0], 1);
  EXPECT_EQ(coo.src[1], 2);
  EXPECT_EQ(coo.dst[1], 0);
}

TEST(MarketReadTest, SkipsCommentsAndBlankLines) {
  const auto coo = Parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment before the size line\n"
      "\n"
      "% another comment\n"
      "2 2 2\n"
      "% a comment between entries\n"
      "1 2\n"
      "\n"
      "2 1\n");
  EXPECT_EQ(coo.num_vertices, 2);
  EXPECT_EQ(coo.num_edges(), 2);
}

TEST(MarketReadTest, SymmetricExpandsOffDiagonal) {
  const auto coo = Parse(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "2 1 5.0\n"
      "3 1 7.0\n"
      "2 2 9.0\n");
  // Two off-diagonal entries double; the diagonal one does not.
  ASSERT_EQ(coo.num_edges(), 5);
  ASSERT_TRUE(coo.has_weights());
  EXPECT_EQ(coo.src[0], 1);
  EXPECT_EQ(coo.dst[0], 0);
  EXPECT_EQ(coo.src[1], 0);  // mirrored copy
  EXPECT_EQ(coo.dst[1], 1);
  EXPECT_FLOAT_EQ(coo.weight[0], 5.0f);
  EXPECT_FLOAT_EQ(coo.weight[1], 5.0f);
  // Diagonal (2,2) appears exactly once.
  int diagonal = 0;
  for (std::size_t i = 0; i < coo.src.size(); ++i) {
    if (coo.src[i] == 1 && coo.dst[i] == 1) ++diagonal;
  }
  EXPECT_EQ(diagonal, 1);
}

TEST(MarketReadTest, IntegerFieldAndRectangularSizes) {
  const auto coo = Parse(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 5 1\n"
      "1 5 42\n");
  // num_vertices covers the larger dimension.
  EXPECT_EQ(coo.num_vertices, 5);
  ASSERT_EQ(coo.num_edges(), 1);
  EXPECT_FLOAT_EQ(coo.weight[0], 42.0f);
}

TEST(MarketReadTest, MalformedInputs) {
  // Each entry: (name, text) expected to throw gunrock::Error.
  const struct {
    const char* name;
    const char* text;
  } cases[] = {
      {"empty", ""},
      {"no banner", "3 3 1\n1 2\n"},
      {"bad object", "%%MatrixMarket vector coordinate pattern general\n"},
      {"bad format", "%%MatrixMarket matrix array real general\n"},
      {"bad field", "%%MatrixMarket matrix coordinate complex general\n"},
      {"bad symmetry",
       "%%MatrixMarket matrix coordinate real hermitian\n"},
      {"missing size line",
       "%%MatrixMarket matrix coordinate pattern general\n"
       "% only comments\n"},
      {"garbage size line",
       "%%MatrixMarket matrix coordinate pattern general\nfoo bar baz\n"},
      {"negative size",
       "%%MatrixMarket matrix coordinate pattern general\n-1 3 0\n"},
      {"row out of range",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n"},
      {"zero index",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"},
      {"missing value",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n"},
      {"truncated entries",
       "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n"},
      {"non-numeric entry",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx y\n"},
  };
  for (const auto& c : cases) {
    EXPECT_THROW(Parse(c.text), Error) << c.name;
  }
}

TEST(MarketReadTest, ErrorsNameTheOffendingLine) {
  // The reader's contract (hardening pass): every malformed-input error
  // carries the line number and the offending token, so a bad multi-
  // million-edge file is a one-glance fix. Each case lists substrings the
  // thrown message must contain.
  const struct {
    const char* name;
    const char* text;
    const char* expect_a;
    const char* expect_b;
  } cases[] = {
      {"zero index is 1-based out of range",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
       "line 3", "1-based"},
      {"out-of-range entry names its line (after a comment)",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n"
       "% comment\n3 1\n",
       "line 4", "out of range"},
      {"truncation names where input ended",
       "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n",
       "expected 2 entries, got 1", "input ended at line 3"},
      {"non-numeric weight names the token",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 abc\n",
       "line 3", "'abc' is not a number"},
      {"partially-numeric index rejected (atoi would take it)",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1x 2\n",
       "line 3", "'1x' is not an integer"},
      {"trailing garbage after an entry",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n"
       "1 2 junk\n",
       "line 3", "trailing garbage 'junk'"},
      {"trailing garbage on the size line",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1 junk\n",
       "line 2", "trailing garbage 'junk'"},
      {"fractional entry count on the size line",
       "%%MatrixMarket matrix coordinate pattern general\n2 2 1.5\n",
       "line 2", "'1.5' is not a non-negative integer"},
  };
  for (const auto& c : cases) {
    try {
      Parse(c.text);
      FAIL() << c.name << ": expected gunrock::Error";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(c.expect_a), std::string::npos)
          << c.name << ": missing '" << c.expect_a << "' in: " << what;
      EXPECT_NE(what.find(c.expect_b), std::string::npos)
          << c.name << ": missing '" << c.expect_b << "' in: " << what;
    }
  }
}

void ExpectSameEdges(const graph::Coo& a, const graph::Coo& b) {
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  ASSERT_EQ(a.has_weights(), b.has_weights());
  for (std::size_t i = 0; i < a.weight.size(); ++i) {
    EXPECT_FLOAT_EQ(a.weight[i], b.weight[i]) << "edge " << i;
  }
}

TEST(MarketRoundTripTest, UnweightedStream) {
  const auto original = graph::MakeKarate();
  std::stringstream buf;
  graph::WriteMarket(buf, original);
  ExpectSameEdges(original, graph::ReadMarket(buf));
}

TEST(MarketRoundTripTest, WeightedStream) {
  auto original = graph::MakeGrid(7, 5);
  graph::AttachRandomWeights(original, 1, 64, test::TestSeed());
  std::stringstream buf;
  graph::WriteMarket(buf, original);
  ExpectSameEdges(original, graph::ReadMarket(buf));
}

TEST(MarketRoundTripTest, GeneratedGraphThroughFile) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = test::TestSeed();
  const auto original = GenerateRmat(p, par::ThreadPool::Global());

  const std::string path =
      ::testing::TempDir() + "/gunrock_market_roundtrip.mtx";
  graph::WriteMarketFile(path, original);
  const auto reread = graph::ReadMarketFile(path);
  std::remove(path.c_str());
  ExpectSameEdges(original, reread);

  // The CSR built from both edge lists is identical.
  const auto a = graph::BuildCsr(original);
  const auto b = graph::BuildCsr(reread);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_TRUE(std::ranges::equal(a.row_offsets(), b.row_offsets()));
  EXPECT_TRUE(std::ranges::equal(a.col_indices(), b.col_indices()));
}

TEST(MarketRoundTripTest, MissingFileThrows) {
  EXPECT_THROW(graph::ReadMarketFile("/nonexistent/path/graph.mtx"),
               Error);
}

}  // namespace
}  // namespace gunrock
