// Minimum spanning forest: total weight vs Kruskal, forest structure
// (acyclic, spanning, right cardinality) across topologies.
#include <gtest/gtest.h>

#include <numeric>

#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Weighted(true)
          .Karate()
          .Path(300)
          .Cycle(123)
          .Complete(40)
          .Grid(20, 20)
          .Rmat(12, 8)
          .Disconnected(4, 128)  // forest over 4 components
          .Road(40, 40)
          .Star(64)
          .Build());
  return *cases;
}

class MstParamTest : public ::testing::TestWithParam<std::size_t> {};

std::string MstName(
    const ::testing::TestParamInfo<std::size_t>& info) {
  return test::SafeTestName(Cases()[info.param].name);
}

TEST_P(MstParamTest, WeightMatchesKruskal) {
  const auto& g = Cases()[GetParam()].graph;
  const auto expected = serial::KruskalMst(g);
  const auto got = Mst(g);
  EXPECT_EQ(got.tree_edges.size(), expected.num_tree_edges);
  // With the (weight, id) tie-break, any MSF has the same total weight.
  EXPECT_NEAR(got.total_weight, expected.total_weight,
              1e-6 * expected.total_weight + 1e-9);
}

TEST_P(MstParamTest, ForestIsAcyclicAndSpanning) {
  const auto& g = Cases()[GetParam()].graph;
  const auto got = Mst(g);
  const auto srcs = g.edge_sources(par::ThreadPool::Global());

  // Union-find over the tree edges: adding one must never close a cycle.
  std::vector<vid_t> parent(g.num_vertices());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](vid_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const eid_t e : got.tree_edges) {
    const vid_t u = srcs[static_cast<std::size_t>(e)];
    const vid_t v = g.col_indices()[e];
    const vid_t ru = find(u), rv = find(v);
    ASSERT_NE(ru, rv) << "cycle closed by edge " << e;
    parent[std::max(ru, rv)] = std::min(ru, rv);
  }
  // Spanning: the forest induces exactly the graph's components.
  const auto cc = serial::ConnectedComponents(g);
  EXPECT_EQ(got.num_components, cc.num_components);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(find(v), cc.component[v]) << "vertex " << v;
  }
  // |F| = |V| - #components.
  EXPECT_EQ(static_cast<vid_t>(got.tree_edges.size()),
            g.num_vertices() - cc.num_components);
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, MstParamTest,
                         ::testing::Range<std::size_t>(0, 9), MstName);

TEST(MstTest, RequiresWeights) {
  const auto g = test::Undirected(graph::MakePath(5));
  EXPECT_THROW(Mst(g), Error);
}

TEST(MstTest, PathTreeIsThePathItself) {
  const auto g = test::WeightedUndirected(graph::MakePath(50));
  const auto got = Mst(g);
  EXPECT_EQ(got.tree_edges.size(), 49u);
  EXPECT_EQ(got.num_components, 1);
}

TEST(MstTest, TriangleDropsHeaviestEdge) {
  graph::Coo coo;
  coo.num_vertices = 3;
  coo.PushEdge(0, 1, 1.0f);
  coo.PushEdge(1, 2, 2.0f);
  coo.PushEdge(0, 2, 10.0f);
  graph::BuildOptions opts;
  opts.symmetrize = true;
  const auto g = graph::BuildCsr(coo, opts);
  const auto got = Mst(g);
  EXPECT_EQ(got.tree_edges.size(), 2u);
  EXPECT_DOUBLE_EQ(got.total_weight, 3.0);
}

TEST(MstTest, EmptyAndEdgelessGraphs) {
  graph::Coo coo;
  coo.num_vertices = 10;
  coo.weight = {};  // no edges at all
  graph::Csr g = graph::BuildCsr(coo);
  // Unweighted edgeless graph: MST requires weights even if trivial.
  EXPECT_THROW(Mst(g), Error);
  coo.PushEdge(0, 1, 2.0f);
  g = graph::BuildCsr(coo);
  const auto got = Mst(g);
  EXPECT_EQ(got.tree_edges.size(), 1u);
  EXPECT_EQ(got.num_components, 9);  // 8 isolated + the pair
}

}  // namespace
}  // namespace gunrock
