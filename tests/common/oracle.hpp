// Oracle-comparison helpers shared by the primitive suites: exact and
// tolerance-based vertex-vector comparison plus the structural validity
// checks for traversal trees (BFS parent tree, shortest-path tree).
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"
#include "primitives/bfs.hpp"
#include "primitives/sssp.hpp"

namespace gunrock::test {

/// Element-wise exact equality of two vertex-indexed vectors, reporting
/// the offending vertex id on mismatch.
template <typename T>
void ExpectSameLabels(const std::vector<T>& expected,
                      const std::vector<T>& got) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v], expected[v]) << "vertex " << v;
  }
}

/// Element-wise float equality (EXPECT_FLOAT_EQ semantics: 4 ULPs).
void ExpectSameDistances(const std::vector<weight_t>& expected,
                         const std::vector<weight_t>& got);

/// Element-wise |got - expected| <= abs_tol for real-valued scores
/// (PageRank, BC).
void ExpectScoresNear(const std::vector<double>& expected,
                      const std::vector<double>& got, double abs_tol);

/// Double-score comparison for engine-vs-direct checks: exact where the
/// computation is exactly reproducible (single-lane global pool — every
/// atomic float accumulation happens in one fixed order) and tight
/// (1e-9) elsewhere, where multi-lane atomic double adds reorder
/// run-to-run; the engine itself must add no error of its own.
void ExpectScoresMatch(const std::vector<double>& expected,
                       const std::vector<double>& got,
                       const char* what = "scores");

/// Validates the BFS parent tree: the source and unreachable vertices
/// have no parent; every other parent is adjacent and exactly one level
/// shallower.
void ExpectValidBfsTree(const graph::Csr& g, vid_t source,
                        const BfsResult& r);

/// Validates the shortest-path tree: every reached non-source vertex has
/// a parent with a tight edge (dist[p] + w(p, v) == dist[v]).
void ExpectValidShortestPathTree(const graph::Csr& g, vid_t source,
                                 const SsspResult& r);

}  // namespace gunrock::test
