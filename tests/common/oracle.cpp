#include "common/oracle.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::test {

void ExpectSameDistances(const std::vector<weight_t>& expected,
                         const std::vector<weight_t>& got) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_FLOAT_EQ(got[v], expected[v]) << "vertex " << v;
  }
}

void ExpectScoresNear(const std::vector<double>& expected,
                      const std::vector<double>& got, double abs_tol) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_NEAR(got[v], expected[v], abs_tol) << "vertex " << v;
  }
}

void ExpectScoresMatch(const std::vector<double>& expected,
                       const std::vector<double>& got, const char* what) {
  if (par::ThreadPool::Global().num_threads() == 1) {
    ASSERT_EQ(got.size(), expected.size()) << what;
    for (std::size_t v = 0; v < got.size(); ++v) {
      EXPECT_EQ(got[v], expected[v]) << what << " vertex " << v;
    }
    return;
  }
  ASSERT_EQ(got.size(), expected.size()) << what;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_NEAR(got[v], expected[v], 1e-9) << what << " vertex " << v;
  }
}

void ExpectValidBfsTree(const graph::Csr& g, vid_t source,
                        const BfsResult& r) {
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v == source) {
      EXPECT_EQ(r.pred[v], kInvalidVid);
      EXPECT_EQ(r.depth[v], 0);
      continue;
    }
    if (r.depth[v] < 0) {
      EXPECT_EQ(r.pred[v], kInvalidVid);
      continue;
    }
    const vid_t p = r.pred[v];
    ASSERT_NE(p, kInvalidVid) << "vertex " << v;
    // Parent is exactly one level shallower and adjacent.
    EXPECT_EQ(r.depth[p], r.depth[v] - 1) << "vertex " << v;
    const auto nbrs = g.neighbors(p);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), v))
        << "pred " << p << " not adjacent to " << v;
  }
}

void ExpectValidShortestPathTree(const graph::Csr& g, vid_t source,
                                 const SsspResult& r) {
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v == source || r.dist[v] == kInfinity) continue;
    const vid_t p = r.pred[v];
    ASSERT_NE(p, kInvalidVid) << "vertex " << v;
    // The tree edge must exist with exactly the residual weight.
    bool found = false;
    for (eid_t e = g.row_begin(p); e < g.row_end(p); ++e) {
      if (g.edge_dest(e) == v &&
          r.dist[p] + g.edge_weight(e) == r.dist[v]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no tight edge from pred " << p << " to " << v;
  }
}

}  // namespace gunrock::test
