#include "common/env.hpp"

#include <cstdlib>

namespace gunrock::test {

std::uint64_t TestSeed() {
  static const std::uint64_t seed = [] {
    if (const char* s = std::getenv("GUNROCK_TEST_SEED")) {
      return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
    }
    return std::uint64_t{7};
  }();
  return seed;
}

}  // namespace gunrock::test
