#include "common/topologies.hpp"

#include <cctype>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace gunrock::test {

namespace {

par::ThreadPool& Pool() { return par::ThreadPool::Global(); }

}  // namespace

graph::Csr Undirected(graph::Coo coo) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

graph::Csr WeightedUndirected(graph::Coo coo) {
  graph::AttachRandomWeights(coo, 1, 64, TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

void CorpusBuilder::Add(std::string name, graph::Coo coo, vid_t source) {
  if (weighted_ && !coo.has_weights()) {
    // Generator-weighted cases (e.g. Road's Euclidean-style weights)
    // keep their native weights.
    graph::AttachRandomWeights(coo, 1, 64, TestSeed());
  }
  graph::BuildOptions opts;
  opts.symmetrize = !directed_;
  if (directed_) name += "_dir";
  cases_.push_back(
      {std::move(name), graph::BuildCsr(coo, opts), source});
}

CorpusBuilder& CorpusBuilder::Karate(vid_t source) {
  Add("karate", graph::MakeKarate(), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Path(vid_t n, vid_t source) {
  Add("path", graph::MakePath(n), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Cycle(vid_t n, vid_t source) {
  Add("cycle", graph::MakeCycle(n), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Star(vid_t n, vid_t source) {
  Add("star", graph::MakeStar(n), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Complete(vid_t n, vid_t source) {
  Add("complete", graph::MakeComplete(n), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Grid(vid_t width, vid_t height,
                                   vid_t source) {
  Add("grid", graph::MakeGrid(width, height), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::BinaryTree(int levels, vid_t source) {
  Add("tree", graph::MakeBinaryTree(levels), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Rmat(int scale, int edge_factor,
                                   vid_t source) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = TestSeed();
  Add("rmat" + std::to_string(scale), GenerateRmat(p, Pool()), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Rgg(int scale, vid_t source) {
  graph::RggParams p;
  p.scale = scale;
  p.seed = TestSeed();
  Add("rgg" + std::to_string(scale), GenerateRgg(p, Pool()), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Road(int width, int height, vid_t source) {
  graph::RoadParams p;
  p.width = width;
  p.height = height;
  p.seed = TestSeed();
  Add("road" + std::to_string(width), GenerateRoad(p, Pool()), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Disconnected(int clusters,
                                           vid_t cluster_size,
                                           vid_t source) {
  graph::PlantedPartitionParams p;
  p.num_clusters = clusters;
  p.cluster_size = cluster_size;
  p.inter_edges = 0;
  p.seed = TestSeed();
  Add("disconnected", GeneratePlantedPartition(p, Pool()), source);
  return *this;
}

CorpusBuilder& CorpusBuilder::Custom(std::string name, graph::Coo coo,
                                     vid_t source) {
  Add(std::move(name), std::move(coo), source);
  return *this;
}

std::string SafeTestName(std::string name) {
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<vid_t> SpreadSources(const graph::Csr& g,
                                 std::size_t count) {
  std::vector<vid_t> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vid_t>(
        (static_cast<std::int64_t>(i) * 997 + 1) % g.num_vertices()));
  }
  return sources;
}

}  // namespace gunrock::test
