// Shared topology corpus for the primitive-vs-oracle suites.
//
// Every suite used to re-implement the same scaffolding: a symmetrizing
// CSR builder, an optional random-weight attacher, and a hand-rolled
// vector of named (graph, source) cases. CorpusBuilder centralizes that:
// suites declare which topology classes they want (and at what size) and
// get back a named case list suitable for parameterized tests.
#pragma once

#include <string>
#include <vector>

#include "common/env.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace gunrock::test {

/// Symmetrized (undirected) CSR from an edge list.
graph::Csr Undirected(graph::Coo coo);

/// Symmetrized CSR with uniform random integer weights in [1, 64] (the
/// paper's weighting), seeded from TestSeed().
graph::Csr WeightedUndirected(graph::Coo coo);

/// One named oracle-comparison case: a prepared CSR plus a start vertex.
struct TopologyCase {
  std::string name;
  graph::Csr graph;
  vid_t source = 0;
};

/// Fluent corpus builder. Weighted(true) attaches random [1, 64] weights
/// (the paper's weighting) to every subsequent case that doesn't already
/// carry generator-native weights. Generator-backed cases run on the
/// global thread pool and are deterministic in (params, TestSeed()).
class CorpusBuilder {
 public:
  CorpusBuilder& Weighted(bool weighted) {
    weighted_ = weighted;
    return *this;
  }

  /// Directed(true) keeps subsequent cases as-generated (no symmetrize);
  /// their names gain a "_dir" suffix to stay distinct.
  CorpusBuilder& Directed(bool directed) {
    directed_ = directed;
    return *this;
  }

  CorpusBuilder& Karate(vid_t source = 0);
  CorpusBuilder& Path(vid_t n, vid_t source = 0);
  CorpusBuilder& Cycle(vid_t n, vid_t source = 0);
  CorpusBuilder& Star(vid_t n, vid_t source = 0);
  CorpusBuilder& Complete(vid_t n, vid_t source = 0);
  CorpusBuilder& Grid(vid_t width, vid_t height, vid_t source = 0);
  CorpusBuilder& BinaryTree(int levels, vid_t source = 0);
  CorpusBuilder& Rmat(int scale, int edge_factor, vid_t source = 0);
  CorpusBuilder& Rgg(int scale, vid_t source = 0);
  CorpusBuilder& Road(int width, int height, vid_t source = 0);
  /// Planted clusters with no inter-cluster bridges (case "disconnected").
  CorpusBuilder& Disconnected(int clusters, vid_t cluster_size,
                              vid_t source = 0);
  /// Escape hatch for suite-specific edge lists.
  CorpusBuilder& Custom(std::string name, graph::Coo coo,
                        vid_t source = 0);

  std::vector<TopologyCase> Build() { return std::move(cases_); }

 private:
  void Add(std::string name, graph::Coo coo, vid_t source);

  bool weighted_ = false;
  bool directed_ = false;
  std::vector<TopologyCase> cases_;
};

/// ctest-safe parameterized-test name: [gtest only allows alphanumerics
/// and '_'] — lowers '-' and other separators to '_'.
std::string SafeTestName(std::string name);

/// `count` deterministic, well-spread source vertices ((i*997 + 1) mod
/// |V|) — the fixed sampling shared by the engine suites so every test
/// and the soak exercise identical sources for a given graph.
std::vector<vid_t> SpreadSources(const graph::Csr& g, std::size_t count);

}  // namespace gunrock::test
