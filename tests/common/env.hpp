// Test-environment knobs. All test randomness flows through TestSeed()
// so `ctest -j` runs are reproducible by default and still steerable for
// exploratory fuzzing.
#pragma once

#include <cstdint>

namespace gunrock::test {

/// Fixed default seed (7, matching the seed suites) overridable via the
/// GUNROCK_TEST_SEED environment variable. Never derived from
/// std::random_device or the clock: two `ctest -j` runs of the same tree
/// must execute identical work.
std::uint64_t TestSeed();

}  // namespace gunrock::test
