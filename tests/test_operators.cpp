// Core operator tests: advance (all strategies, push and pull, V2V and
// V2E) against a reference expansion, filter semantics, near/far split,
// the direction controller's state machine, and the SIMT lane model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/advance.hpp"
#include "core/direction.hpp"
#include "parallel/atomics.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "core/priority_queue.hpp"
#include "core/simt_model.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::core {
namespace {

par::ThreadPool& Pool() { return par::ThreadPool::Global(); }

graph::Csr Undirected(graph::Coo coo) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

/// Pass-through functor: every edge passes, no computation.
struct EmitAllFunctor {
  struct P {};
  static bool CondEdge(vid_t, vid_t, eid_t, P&) { return true; }
  static void ApplyEdge(vid_t, vid_t, eid_t, P&) {}
};

/// Parity functor: emit only even destinations; count applications.
struct EvenDstFunctor {
  struct P {
    std::int64_t applies = 0;
  };
  static bool CondEdge(vid_t, vid_t d, eid_t, P&) { return d % 2 == 0; }
  static void ApplyEdge(vid_t, vid_t, eid_t, P& p) {
    par::AtomicAdd(&p.applies, std::int64_t{1});
  }
};

std::multiset<vid_t> ReferenceExpansion(const graph::Csr& g,
                                        std::span<const vid_t> frontier,
                                        bool even_only) {
  std::multiset<vid_t> out;
  for (const vid_t u : frontier) {
    for (const vid_t v : g.neighbors(u)) {
      if (!even_only || v % 2 == 0) out.insert(v);
    }
  }
  return out;
}

class AdvanceStrategyTest
    : public ::testing::TestWithParam<LoadBalance> {};

TEST_P(AdvanceStrategyTest, ExpandsExactlyTheNeighborMultiset) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  const auto g = Undirected(GenerateRmat(p, Pool()));
  std::vector<vid_t> frontier;
  for (vid_t v = 0; v < g.num_vertices(); v += 3) frontier.push_back(v);

  AdvanceConfig cfg;
  cfg.lb = GetParam();
  EmitAllFunctor::P prob;
  std::vector<vid_t> out;
  const auto res = AdvancePush<EmitAllFunctor>(Pool(), g, frontier, &out,
                                               prob, cfg);

  eid_t expected_edges = 0;
  for (const vid_t u : frontier) expected_edges += g.degree(u);
  EXPECT_EQ(res.edges_visited, expected_edges);
  EXPECT_EQ(res.output_size, out.size());

  const auto expected = ReferenceExpansion(g, frontier, false);
  std::multiset<vid_t> got(out.begin(), out.end());
  EXPECT_EQ(got, expected);
}

TEST_P(AdvanceStrategyTest, CondFiltersAndApplyRunsOncePerPass) {
  const auto g = Undirected(graph::MakeKarate());
  std::vector<vid_t> frontier = {0, 33, 5};
  AdvanceConfig cfg;
  cfg.lb = GetParam();
  EvenDstFunctor::P prob;
  std::vector<vid_t> out;
  AdvancePush<EvenDstFunctor>(Pool(), g, frontier, &out, prob, cfg);

  const auto expected = ReferenceExpansion(g, frontier, true);
  std::multiset<vid_t> got(out.begin(), out.end());
  EXPECT_EQ(got, expected);
  // ApplyEdge fired exactly once per passing edge.
  EXPECT_EQ(prob.applies, static_cast<std::int64_t>(expected.size()));
}

TEST_P(AdvanceStrategyTest, VisitOnlyAdvanceProducesNoOutput) {
  const auto g = Undirected(graph::MakeStar(100));
  std::vector<vid_t> frontier = {0};
  AdvanceConfig cfg;
  cfg.lb = GetParam();
  EvenDstFunctor::P prob;
  const auto res = AdvancePush<EvenDstFunctor>(
      Pool(), g, frontier, static_cast<std::vector<vid_t>*>(nullptr), prob,
      cfg);
  EXPECT_EQ(res.edges_visited, 99);
  EXPECT_GT(prob.applies, 0);
}

TEST_P(AdvanceStrategyTest, EdgeOutputAdvanceEmitsEdgeIds) {
  const auto g = Undirected(graph::MakeKarate());
  std::vector<vid_t> frontier = {0, 2};
  AdvanceConfig cfg;
  cfg.lb = GetParam();
  EmitAllFunctor::P prob;
  std::vector<eid_t> out;
  AdvancePush<EmitAllFunctor, EmitAllFunctor::P, eid_t>(
      Pool(), g, frontier, &out, prob, cfg);
  // Every emitted edge id must lie in a frontier vertex's row.
  std::multiset<eid_t> expected;
  for (const vid_t u : frontier) {
    for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
      expected.insert(e);
    }
  }
  EXPECT_EQ(std::multiset<eid_t>(out.begin(), out.end()), expected);
}

TEST_P(AdvanceStrategyTest, EmptyAndZeroDegreeFrontiers) {
  graph::Coo coo;
  coo.num_vertices = 8;
  coo.PushEdge(0, 1);
  const auto g = Undirected(std::move(coo));
  AdvanceConfig cfg;
  cfg.lb = GetParam();
  EmitAllFunctor::P prob;
  std::vector<vid_t> out;
  // Empty frontier.
  const auto r0 = AdvancePush<EmitAllFunctor>(
      Pool(), g, std::vector<vid_t>{}, &out, prob, cfg);
  EXPECT_EQ(r0.edges_visited, 0);
  EXPECT_TRUE(out.empty());
  // Frontier of isolated vertices.
  const auto r1 = AdvancePush<EmitAllFunctor>(
      Pool(), g, std::vector<vid_t>{4, 5, 6}, &out, prob, cfg);
  EXPECT_EQ(r1.edges_visited, 0);
  EXPECT_TRUE(out.empty());
}

INSTANTIATE_TEST_SUITE_P(Strategies, AdvanceStrategyTest,
                         ::testing::Values(LoadBalance::kThreadMapped,
                                           LoadBalance::kTwc,
                                           LoadBalance::kEqualWork),
                         [](const auto& info) {
                           std::string s = ToString(info.param);
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(AdvancePullTest, ProbesCandidatesAgainstBitmap) {
  const auto g = Undirected(graph::MakePath(10));
  par::Bitmap frontier_bits(10);
  frontier_bits.Set(4);  // frontier = {4}
  std::vector<vid_t> candidates = {2, 3, 5, 6};  // unvisited
  EmitAllFunctor::P prob;
  std::vector<vid_t> out;
  AdvancePull<EmitAllFunctor>(Pool(), g, frontier_bits, candidates, &out,
                              prob, {});
  // Only 3 and 5 touch the frontier vertex 4.
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<vid_t>{3, 5}));
}

TEST(AdvancePullTest, EarlyBreakVisitsAtMostDegreeEdges) {
  const auto g = Undirected(graph::MakeComplete(64));
  par::Bitmap bits(64);
  for (vid_t v = 0; v < 32; ++v) bits.Set(static_cast<std::size_t>(v));
  std::vector<vid_t> candidates;
  for (vid_t v = 32; v < 64; ++v) candidates.push_back(v);
  EmitAllFunctor::P prob;
  std::vector<vid_t> out;
  const auto res = AdvancePull<EmitAllFunctor>(Pool(), g, bits, candidates,
                                               &out, prob, {});
  EXPECT_EQ(out.size(), 32u);  // every candidate has a frontier parent
  // With early break, each candidate stops at its first frontier parent —
  // far fewer probes than the full 32*63 edge scan.
  EXPECT_LT(res.edges_visited, 32 * 63 / 2);
}

struct ClaimFilterFunctor {
  struct P {
    par::Bitmap* seen;
    std::int64_t applied = 0;
  };
  static bool CondVertex(vid_t v, P& p) {
    return p.seen->TestAndSet(static_cast<std::size_t>(v));
  }
  static void ApplyVertex(vid_t, P& p) {
    par::AtomicAdd(&p.applied, std::int64_t{1});
  }
};

TEST(FilterTest, ClaimFilterDedupsExactly) {
  par::Bitmap seen(100);
  ClaimFilterFunctor::P prob{&seen, 0};
  std::vector<vid_t> input;
  for (int rep = 0; rep < 5; ++rep) {
    for (vid_t v = 0; v < 100; v += 2) input.push_back(v);
  }
  input.push_back(kInvalidVid);  // always dropped
  std::vector<vid_t> out;
  const auto res =
      FilterVertex<ClaimFilterFunctor>(Pool(), input, &out, prob);
  EXPECT_EQ(res.input_size, input.size());
  EXPECT_EQ(out.size(), 50u);
  EXPECT_EQ(prob.applied, 50);  // ApplyVertex only on kept items
  std::set<vid_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(FilterTest, HistoryHashPrunesDuplicatesHeuristically) {
  struct PassAll {
    struct P {};
    static bool CondVertex(vid_t, P&) { return true; }
    static void ApplyVertex(vid_t, P&) {}
  };
  PassAll::P prob;
  // Many duplicates of few values: history hash must catch most.
  std::vector<vid_t> input;
  for (int rep = 0; rep < 1000; ++rep) {
    for (vid_t v = 0; v < 8; ++v) input.push_back(v);
  }
  FilterConfig cfg;
  cfg.history_hash = true;
  cfg.grain = 2048;  // dedup is per-chunk; pin the chunking
  std::vector<vid_t> out;
  FilterVertex<PassAll>(Pool(), input, &out, prob, cfg);
  // Heuristic, not exact: each chunk keeps ~8 of its 2048 items, and all
  // distinct values survive somewhere.
  EXPECT_LT(out.size(), input.size() / 10);
  std::set<vid_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(FilterTest, EdgeFilterSeesEndpoints) {
  struct KeepCross {
    struct P {
      const vid_t* comp;
    };
    static bool CondEdge(vid_t s, vid_t d, eid_t, P& p) {
      return p.comp[s] != p.comp[d];
    }
    static void ApplyEdge(vid_t, vid_t, eid_t, P&) {}
  };
  const auto g = Undirected(graph::MakePath(6));
  const auto srcs = g.edge_sources(Pool());
  const vid_t comp[] = {0, 0, 0, 1, 1, 1};
  KeepCross::P prob{comp};
  std::vector<eid_t> input;
  for (eid_t e = 0; e < g.num_edges(); ++e) input.push_back(e);
  std::vector<eid_t> out;
  FilterEdge<KeepCross>(Pool(), srcs, g.col_indices(), input, &out, prob);
  // Only the two arcs of edge (2,3) cross the cut.
  EXPECT_EQ(out.size(), 2u);
}

TEST(PriorityQueueTest, SplitsByPredicatePreservingAll) {
  std::vector<vid_t> items;
  for (vid_t v = 0; v < 1000; ++v) items.push_back(v);
  std::vector<vid_t> near, far;
  far.push_back(9999);  // pre-existing far content is appended to
  SplitNearFar(Pool(), std::span<const vid_t>(items), near, far,
               [](vid_t v) { return v % 3 == 0; });
  EXPECT_EQ(near.size(), 334u);
  EXPECT_EQ(far.size(), 1u + 666u);
  EXPECT_EQ(far[0], 9999);
  for (const vid_t v : near) EXPECT_EQ(v % 3, 0);
}

TEST(DirectionOptimizerTest, SwitchesAtBeamerThresholds) {
  DirectionOptimizer opt(/*num_vertices=*/2400, /*alpha=*/14.0,
                         /*beta=*/24.0);
  // Small frontier relative to unexplored edges: stay push.
  EXPECT_FALSE(opt.ShouldPull(/*m_f=*/10, /*m_u=*/100000, /*n_f=*/5));
  // Frontier edges exceed m_u / alpha: switch to pull.
  EXPECT_TRUE(opt.ShouldPull(/*m_f=*/10000, /*m_u=*/100000, /*n_f=*/500));
  // Stays pulling while the frontier is large.
  EXPECT_TRUE(opt.ShouldPull(/*m_f=*/10, /*m_u=*/100000, /*n_f=*/500));
  // Frontier shrinks below n / beta: back to push.
  EXPECT_FALSE(opt.ShouldPull(/*m_f=*/10, /*m_u=*/100000, /*n_f=*/50));
}

TEST(SimtModelTest, UniformWorkIsEfficientSkewedWorkIsNot) {
  auto& pool = Pool();
  const auto uniform = [](std::size_t) { return 8; };
  EXPECT_GT(LaneEfficiencyThreadMapped(pool, 4096, uniform), 0.99);
  // One giant among tiny items per warp: efficiency collapses.
  const auto skewed = [](std::size_t i) { return i % 32 == 0 ? 1000 : 1; };
  EXPECT_LT(LaneEfficiencyThreadMapped(pool, 4096, skewed), 0.1);
  // Equal-work is immune to skew.
  EXPECT_GT(LaneEfficiencyEqualWork(1 << 20), 0.99);
  // TWC bins the giant items separately: much better than thread-mapped.
  const double twc = LaneEfficiencyTwc(pool, 4096, skewed);
  EXPECT_GT(twc, LaneEfficiencyThreadMapped(pool, 4096, skewed));
}

TEST(SimtModelTest, BoundsAreRespected) {
  auto& pool = Pool();
  for (const auto n : {0u, 1u, 31u, 32u, 33u, 1000u}) {
    const auto cost = [](std::size_t i) { return (i * 7) % 100; };
    const double tm = LaneEfficiencyThreadMapped(pool, n, cost);
    const double twc = LaneEfficiencyTwc(pool, n, cost);
    EXPECT_GE(tm, 0.0);
    EXPECT_LE(tm, 1.0);
    EXPECT_GE(twc, 0.0);
    EXPECT_LE(twc, 1.0);
  }
  EXPECT_EQ(LaneEfficiencyEqualWork(0), 1.0);
  EXPECT_EQ(LaneEfficiencyEqualWork(32), 1.0);
  EXPECT_LT(LaneEfficiencyEqualWork(33), 1.0);
}

TEST(FrontierTest, PingPongBuffersFlipAndClear) {
  VertexFrontier f(16);
  f.Assign({1, 2, 3});
  EXPECT_EQ(f.size(), 3u);
  f.next().push_back(9);
  f.Flip();
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.current()[0], 9);
  EXPECT_TRUE(f.next().empty());  // retired buffer cleared for reuse
  f.Clear();
  EXPECT_TRUE(f.empty());
}

}  // namespace
}  // namespace gunrock::core
