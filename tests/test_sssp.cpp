// SSSP vs Dijkstra across topologies × strategies × near/far settings,
// plus shortest-path-tree properties.
#include <gtest/gtest.h>

#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Weighted(true)
          .Karate()
          .Path(200)
          .Grid(25, 25, /*source=*/7)
          .Rmat(11, 8, /*source=*/3)
          .Road(48, 48)
          .Disconnected(3, 50)
          .Build());
  return *cases;
}

struct Config {
  core::LoadBalance lb;
  bool near_far;
  weight_t delta;  // 0 = auto
};

std::string ConfigName(const ::testing::TestParamInfo<
                       std::tuple<std::size_t, Config>>& info) {
  const auto& [idx, cfg] = info.param;
  std::string name = Cases()[idx].name;
  name += "_";
  name += ToString(cfg.lb);
  name += cfg.near_far ? "_nf" : "_bf";
  if (cfg.delta > 0) {
    name += "_d" + std::to_string(static_cast<int>(cfg.delta));
  }
  return test::SafeTestName(std::move(name));
}

class SsspParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Config>> {};

TEST_P(SsspParamTest, MatchesDijkstra) {
  const auto& [idx, cfg] = GetParam();
  const auto& c = Cases()[idx];
  const auto expected = serial::Dijkstra(c.graph, c.source);

  SsspOptions opts;
  opts.load_balance = cfg.lb;
  opts.use_near_far = cfg.near_far;
  opts.delta = cfg.delta;
  const auto got = Sssp(c.graph, c.source, opts);

  test::ExpectSameDistances(expected.dist, got.dist);
}

TEST_P(SsspParamTest, PredecessorsFormShortestPathTree) {
  const auto& [idx, cfg] = GetParam();
  const auto& c = Cases()[idx];
  SsspOptions opts;
  opts.load_balance = cfg.lb;
  opts.use_near_far = cfg.near_far;
  opts.delta = cfg.delta;
  const auto got = Sssp(c.graph, c.source, opts);

  test::ExpectValidShortestPathTree(c.graph, c.source, got);
}

std::vector<std::tuple<std::size_t, Config>> AllParams() {
  const Config configs[] = {
      {core::LoadBalance::kThreadMapped, true, 0},
      {core::LoadBalance::kTwc, true, 0},
      {core::LoadBalance::kEqualWork, true, 0},
      {core::LoadBalance::kAuto, true, 0},
      {core::LoadBalance::kAuto, false, 0},
      {core::LoadBalance::kAuto, true, 4},
      {core::LoadBalance::kAuto, true, 1000},  // degenerate: one bucket
  };
  std::vector<std::tuple<std::size_t, Config>> params;
  for (std::size_t i = 0; i < Cases().size(); ++i) {
    for (const auto& cfg : configs) params.emplace_back(i, cfg);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SsspParamTest,
                         ::testing::ValuesIn(AllParams()), ConfigName);

TEST(SsspTest, RequiresWeights) {
  const auto g = test::Undirected(graph::MakePath(5));
  EXPECT_THROW(Sssp(g, 0), Error);
}

TEST(SsspTest, RejectsBadSource) {
  auto g = test::WeightedUndirected(graph::MakePath(5));
  EXPECT_THROW(Sssp(g, 5), Error);
}

TEST(SsspTest, UnreachableVerticesStayInfinite) {
  graph::PlantedPartitionParams p;
  p.num_clusters = 2;
  p.cluster_size = 32;
  const auto g = test::WeightedUndirected(
      GeneratePlantedPartition(p, par::ThreadPool::Global()));
  const auto got = Sssp(g, 0);
  const auto cc = serial::ConnectedComponents(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cc.component[v] != cc.component[0]) {
      EXPECT_EQ(got.dist[v], kInfinity);
      EXPECT_EQ(got.pred[v], kInvalidVid);
    }
  }
}

TEST(SsspTest, EdgeThroughputReported) {
  graph::RmatParams p;
  p.scale = 10;
  const auto g = test::WeightedUndirected(
      GenerateRmat(p, par::ThreadPool::Global()));
  const auto r = Sssp(g, 0);
  EXPECT_GT(r.stats.edges_visited, 0);
  EXPECT_GT(r.stats.Mteps(), 0.0);
}

}  // namespace
}  // namespace gunrock
