// SSSP vs Dijkstra across topologies × strategies × near/far settings,
// plus shortest-path-tree properties.
#include <gtest/gtest.h>

#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr WeightedUndirected(graph::Coo coo, std::uint64_t seed = 7) {
  graph::AttachRandomWeights(coo, 1, 64, seed);
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

struct SsspCase {
  std::string name;
  graph::Csr graph;
  vid_t source;
};

const std::vector<SsspCase>& Cases() {
  static const auto* cases = [] {
    auto* v = new std::vector<SsspCase>;
    v->push_back({"karate", WeightedUndirected(graph::MakeKarate()), 0});
    v->push_back({"path", WeightedUndirected(graph::MakePath(200)), 0});
    v->push_back({"grid", WeightedUndirected(graph::MakeGrid(25, 25)), 7});
    {
      graph::RmatParams p;
      p.scale = 11;
      p.edge_factor = 8;
      v->push_back({"rmat11",
                    WeightedUndirected(
                        GenerateRmat(p, par::ThreadPool::Global())),
                    3});
    }
    {
      graph::RoadParams p;
      p.width = 48;
      p.height = 48;
      auto coo = GenerateRoad(p, par::ThreadPool::Global());
      graph::BuildOptions opts;
      opts.symmetrize = true;
      v->push_back({"road48", graph::BuildCsr(coo, opts), 0});
    }
    {
      graph::PlantedPartitionParams p;
      p.num_clusters = 3;
      p.cluster_size = 50;
      v->push_back({"disconnected",
                    WeightedUndirected(GeneratePlantedPartition(
                        p, par::ThreadPool::Global())),
                    0});
    }
    return v;
  }();
  return *cases;
}

struct Config {
  core::LoadBalance lb;
  bool near_far;
  weight_t delta;  // 0 = auto
};

std::string ConfigName(const ::testing::TestParamInfo<
                       std::tuple<std::size_t, Config>>& info) {
  const auto& [idx, cfg] = info.param;
  std::string name = Cases()[idx].name;
  name += "_";
  name += ToString(cfg.lb);
  name += cfg.near_far ? "_nf" : "_bf";
  if (cfg.delta > 0) {
    name += "_d" + std::to_string(static_cast<int>(cfg.delta));
  }
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class SsspParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Config>> {};

TEST_P(SsspParamTest, MatchesDijkstra) {
  const auto& [idx, cfg] = GetParam();
  const auto& c = Cases()[idx];
  const auto expected = serial::Dijkstra(c.graph, c.source);

  SsspOptions opts;
  opts.load_balance = cfg.lb;
  opts.use_near_far = cfg.near_far;
  opts.delta = cfg.delta;
  const auto got = Sssp(c.graph, c.source, opts);

  ASSERT_EQ(got.dist.size(), expected.dist.size());
  for (std::size_t v = 0; v < got.dist.size(); ++v) {
    EXPECT_FLOAT_EQ(got.dist[v], expected.dist[v]) << "vertex " << v;
  }
}

TEST_P(SsspParamTest, PredecessorsFormShortestPathTree) {
  const auto& [idx, cfg] = GetParam();
  const auto& c = Cases()[idx];
  SsspOptions opts;
  opts.load_balance = cfg.lb;
  opts.use_near_far = cfg.near_far;
  opts.delta = cfg.delta;
  const auto got = Sssp(c.graph, c.source, opts);

  for (vid_t v = 0; v < c.graph.num_vertices(); ++v) {
    if (v == c.source || got.dist[v] == kInfinity) continue;
    const vid_t p = got.pred[v];
    ASSERT_NE(p, kInvalidVid) << "vertex " << v;
    // The tree edge must exist with exactly the residual weight.
    bool found = false;
    for (eid_t e = c.graph.row_begin(p); e < c.graph.row_end(p); ++e) {
      if (c.graph.edge_dest(e) == v &&
          got.dist[p] + c.graph.edge_weight(e) == got.dist[v]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no tight edge from pred " << p << " to " << v;
  }
}

std::vector<std::tuple<std::size_t, Config>> AllParams() {
  const Config configs[] = {
      {core::LoadBalance::kThreadMapped, true, 0},
      {core::LoadBalance::kTwc, true, 0},
      {core::LoadBalance::kEqualWork, true, 0},
      {core::LoadBalance::kAuto, true, 0},
      {core::LoadBalance::kAuto, false, 0},
      {core::LoadBalance::kAuto, true, 4},
      {core::LoadBalance::kAuto, true, 1000},  // degenerate: one bucket
  };
  std::vector<std::tuple<std::size_t, Config>> params;
  for (std::size_t i = 0; i < Cases().size(); ++i) {
    for (const auto& cfg : configs) params.emplace_back(i, cfg);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SsspParamTest,
                         ::testing::ValuesIn(AllParams()), ConfigName);

TEST(SsspTest, RequiresWeights) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  const auto g = graph::BuildCsr(graph::MakePath(5), opts);
  EXPECT_THROW(Sssp(g, 0), Error);
}

TEST(SsspTest, RejectsBadSource) {
  auto g = WeightedUndirected(graph::MakePath(5));
  EXPECT_THROW(Sssp(g, 5), Error);
}

TEST(SsspTest, UnreachableVerticesStayInfinite) {
  graph::PlantedPartitionParams p;
  p.num_clusters = 2;
  p.cluster_size = 32;
  const auto g = WeightedUndirected(
      GeneratePlantedPartition(p, par::ThreadPool::Global()));
  const auto got = Sssp(g, 0);
  const auto cc = serial::ConnectedComponents(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cc.component[v] != cc.component[0]) {
      EXPECT_EQ(got.dist[v], kInfinity);
      EXPECT_EQ(got.pred[v], kInvalidVid);
    }
  }
}

TEST(SsspTest, EdgeThroughputReported) {
  graph::RmatParams p;
  p.scale = 10;
  const auto g =
      WeightedUndirected(GenerateRmat(p, par::ThreadPool::Global()));
  const auto r = Sssp(g, 0);
  EXPECT_GT(r.stats.edges_visited, 0);
  EXPECT_GT(r.stats.Mteps(), 0.0);
}

}  // namespace
}  // namespace gunrock
