// BFS vs the serial oracle across topologies × strategies × modes ×
// directions, plus structural properties of the BFS tree.
#include <gtest/gtest.h>

#include "gunrock.hpp"

namespace gunrock {
namespace {

using graph::BuildOptions;
using graph::Coo;
using graph::Csr;

Csr Undirected(Coo coo) {
  BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

struct BfsCase {
  std::string name;
  Csr graph;
  vid_t source;
};

std::vector<BfsCase>* MakeCases() {
  auto* cases = new std::vector<BfsCase>;
  cases->push_back({"karate", Undirected(graph::MakeKarate()), 0});
  cases->push_back({"path", Undirected(graph::MakePath(257)), 0});
  cases->push_back({"star", Undirected(graph::MakeStar(100)), 3});
  cases->push_back({"grid", Undirected(graph::MakeGrid(37, 23)), 11});
  cases->push_back(
      {"tree", Undirected(graph::MakeBinaryTree(10)), 0});
  {
    graph::RmatParams p;
    p.scale = 12;
    p.edge_factor = 8;
    cases->push_back({"rmat12", Undirected(GenerateRmat(
                                    p, par::ThreadPool::Global())),
                      5});
  }
  {
    graph::RggParams p;
    p.scale = 12;
    cases->push_back({"rgg12", Undirected(GenerateRgg(
                                   p, par::ThreadPool::Global())),
                      17});
  }
  {
    // Disconnected graph: two planted clusters with no bridges.
    graph::PlantedPartitionParams p;
    p.num_clusters = 4;
    p.cluster_size = 64;
    cases->push_back({"disconnected",
                      Undirected(GeneratePlantedPartition(
                          p, par::ThreadPool::Global())),
                      1});
  }
  return cases;
}

const std::vector<BfsCase>& Cases() {
  static const std::vector<BfsCase>* cases = MakeCases();
  return *cases;
}

struct Config {
  core::LoadBalance lb;
  bool idempotent;
  core::Direction direction;
};

std::string ConfigName(const ::testing::TestParamInfo<
                       std::tuple<std::size_t, Config>>& info) {
  const auto& [case_idx, cfg] = info.param;
  std::string name = Cases()[case_idx].name;
  name += "_";
  name += ToString(cfg.lb);
  name += cfg.idempotent ? "_idem" : "_atomic";
  name += "_";
  name += ToString(cfg.direction);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class BfsParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Config>> {};

TEST_P(BfsParamTest, MatchesSerialDepths) {
  const auto& [case_idx, cfg] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto expected = serial::Bfs(c.graph, c.source);

  BfsOptions opts;
  opts.load_balance = cfg.lb;
  opts.idempotent = cfg.idempotent;
  opts.direction = cfg.direction;
  const auto got = Bfs(c.graph, c.source, opts);

  ASSERT_EQ(got.depth.size(), expected.depth.size());
  for (std::size_t v = 0; v < got.depth.size(); ++v) {
    EXPECT_EQ(got.depth[v], expected.depth[v]) << "vertex " << v;
  }
}

TEST_P(BfsParamTest, PredecessorsFormValidBfsTree) {
  const auto& [case_idx, cfg] = GetParam();
  const auto& c = Cases()[case_idx];
  BfsOptions opts;
  opts.load_balance = cfg.lb;
  opts.idempotent = cfg.idempotent;
  opts.direction = cfg.direction;
  const auto got = Bfs(c.graph, c.source, opts);

  for (vid_t v = 0; v < c.graph.num_vertices(); ++v) {
    if (v == c.source) {
      EXPECT_EQ(got.pred[v], kInvalidVid);
      EXPECT_EQ(got.depth[v], 0);
      continue;
    }
    if (got.depth[v] < 0) {
      EXPECT_EQ(got.pred[v], kInvalidVid);
      continue;
    }
    const vid_t p = got.pred[v];
    ASSERT_NE(p, kInvalidVid) << "vertex " << v;
    // Parent is exactly one level shallower and adjacent.
    EXPECT_EQ(got.depth[p], got.depth[v] - 1) << "vertex " << v;
    const auto nbrs = c.graph.neighbors(p);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), v))
        << "pred " << p << " not adjacent to " << v;
  }
}

std::vector<std::tuple<std::size_t, Config>> AllParams() {
  const Config configs[] = {
      {core::LoadBalance::kThreadMapped, false, core::Direction::kPush},
      {core::LoadBalance::kThreadMapped, true, core::Direction::kPush},
      {core::LoadBalance::kTwc, false, core::Direction::kPush},
      {core::LoadBalance::kTwc, true, core::Direction::kPush},
      {core::LoadBalance::kEqualWork, false, core::Direction::kPush},
      {core::LoadBalance::kEqualWork, true, core::Direction::kPush},
      {core::LoadBalance::kAuto, true, core::Direction::kPush},
      {core::LoadBalance::kAuto, true, core::Direction::kPull},
      {core::LoadBalance::kAuto, false, core::Direction::kPull},
      {core::LoadBalance::kAuto, true, core::Direction::kOptimizing},
      {core::LoadBalance::kAuto, false, core::Direction::kOptimizing},
      {core::LoadBalance::kEqualWork, true, core::Direction::kOptimizing},
  };
  std::vector<std::tuple<std::size_t, Config>> params;
  for (std::size_t i = 0; i < Cases().size(); ++i) {
    for (const auto& cfg : configs) params.emplace_back(i, cfg);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, BfsParamTest,
                         ::testing::ValuesIn(AllParams()), ConfigName);

TEST(BfsTest, RejectsBadSource) {
  const auto g = Undirected(graph::MakePath(4));
  EXPECT_THROW(Bfs(g, -1), Error);
  EXPECT_THROW(Bfs(g, 4), Error);
}

TEST(BfsTest, SingleVertexGraph) {
  graph::Coo coo;
  coo.num_vertices = 1;
  const auto g = graph::BuildCsr(coo);
  const auto r = Bfs(g, 0);
  EXPECT_EQ(r.depth[0], 0);
  // One advance runs on the singleton frontier and produces nothing.
  EXPECT_EQ(r.stats.iterations, 1);
  EXPECT_EQ(r.stats.edges_visited, 0);
}

TEST(BfsTest, CountsEdgesAndTime) {
  graph::RmatParams p;
  p.scale = 10;
  const auto g = Undirected(GenerateRmat(p, par::ThreadPool::Global()));
  BfsOptions opts;
  opts.direction = core::Direction::kPush;
  const auto r = Bfs(g, 0, opts);
  EXPECT_GT(r.stats.edges_visited, 0);
  EXPECT_GT(r.stats.iterations, 0);
  EXPECT_GE(r.stats.lane_efficiency, 0.0);
  EXPECT_LE(r.stats.lane_efficiency, 1.0);
}

TEST(BfsTest, RecordsPerIterationWhenAsked) {
  const auto g = Undirected(graph::MakeBinaryTree(8));
  BfsOptions opts;
  opts.collect_records = true;
  opts.direction = core::Direction::kPush;
  const auto r = Bfs(g, 0, opts);
  EXPECT_EQ(static_cast<int>(r.stats.records.size()),
            r.stats.iterations);
}

}  // namespace
}  // namespace gunrock
