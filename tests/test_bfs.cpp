// BFS vs the serial oracle across topologies × strategies × modes ×
// directions, plus structural properties of the BFS tree.
#include <gtest/gtest.h>

#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Karate()
          .Path(257)
          .Star(100, /*source=*/3)
          .Grid(37, 23, /*source=*/11)
          .BinaryTree(10)
          .Rmat(12, 8, /*source=*/5)
          .Rgg(12, /*source=*/17)
          .Disconnected(4, 64, /*source=*/1)
          .Build());
  return *cases;
}

struct Config {
  core::LoadBalance lb;
  bool idempotent;
  core::Direction direction;
};

std::string ConfigName(const ::testing::TestParamInfo<
                       std::tuple<std::size_t, Config>>& info) {
  const auto& [case_idx, cfg] = info.param;
  std::string name = Cases()[case_idx].name;
  name += "_";
  name += ToString(cfg.lb);
  name += cfg.idempotent ? "_idem" : "_atomic";
  name += "_";
  name += ToString(cfg.direction);
  return test::SafeTestName(std::move(name));
}

class BfsParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Config>> {};

TEST_P(BfsParamTest, MatchesSerialDepths) {
  const auto& [case_idx, cfg] = GetParam();
  const auto& c = Cases()[case_idx];
  const auto expected = serial::Bfs(c.graph, c.source);

  BfsOptions opts;
  opts.load_balance = cfg.lb;
  opts.idempotent = cfg.idempotent;
  opts.direction = cfg.direction;
  const auto got = Bfs(c.graph, c.source, opts);

  test::ExpectSameLabels(expected.depth, got.depth);
}

TEST_P(BfsParamTest, PredecessorsFormValidBfsTree) {
  const auto& [case_idx, cfg] = GetParam();
  const auto& c = Cases()[case_idx];
  BfsOptions opts;
  opts.load_balance = cfg.lb;
  opts.idempotent = cfg.idempotent;
  opts.direction = cfg.direction;
  const auto got = Bfs(c.graph, c.source, opts);

  test::ExpectValidBfsTree(c.graph, c.source, got);
}

std::vector<std::tuple<std::size_t, Config>> AllParams() {
  const Config configs[] = {
      {core::LoadBalance::kThreadMapped, false, core::Direction::kPush},
      {core::LoadBalance::kThreadMapped, true, core::Direction::kPush},
      {core::LoadBalance::kTwc, false, core::Direction::kPush},
      {core::LoadBalance::kTwc, true, core::Direction::kPush},
      {core::LoadBalance::kEqualWork, false, core::Direction::kPush},
      {core::LoadBalance::kEqualWork, true, core::Direction::kPush},
      {core::LoadBalance::kAuto, true, core::Direction::kPush},
      {core::LoadBalance::kAuto, true, core::Direction::kPull},
      {core::LoadBalance::kAuto, false, core::Direction::kPull},
      {core::LoadBalance::kAuto, true, core::Direction::kOptimizing},
      {core::LoadBalance::kAuto, false, core::Direction::kOptimizing},
      {core::LoadBalance::kEqualWork, true, core::Direction::kOptimizing},
  };
  std::vector<std::tuple<std::size_t, Config>> params;
  for (std::size_t i = 0; i < Cases().size(); ++i) {
    for (const auto& cfg : configs) params.emplace_back(i, cfg);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, BfsParamTest,
                         ::testing::ValuesIn(AllParams()), ConfigName);

TEST(BfsTest, RejectsBadSource) {
  const auto g = test::Undirected(graph::MakePath(4));
  EXPECT_THROW(Bfs(g, -1), Error);
  EXPECT_THROW(Bfs(g, 4), Error);
}

TEST(BfsTest, SingleVertexGraph) {
  graph::Coo coo;
  coo.num_vertices = 1;
  const auto g = graph::BuildCsr(coo);
  const auto r = Bfs(g, 0);
  EXPECT_EQ(r.depth[0], 0);
  // One advance runs on the singleton frontier and produces nothing.
  EXPECT_EQ(r.stats.iterations, 1);
  EXPECT_EQ(r.stats.edges_visited, 0);
}

TEST(BfsTest, CountsEdgesAndTime) {
  graph::RmatParams p;
  p.scale = 10;
  const auto g =
      test::Undirected(GenerateRmat(p, par::ThreadPool::Global()));
  BfsOptions opts;
  opts.direction = core::Direction::kPush;
  const auto r = Bfs(g, 0, opts);
  EXPECT_GT(r.stats.edges_visited, 0);
  EXPECT_GT(r.stats.iterations, 0);
  EXPECT_GE(r.stats.lane_efficiency, 0.0);
  EXPECT_LE(r.stats.lane_efficiency, 1.0);
}

TEST(BfsTest, RecordsPerIterationWhenAsked) {
  const auto g = test::Undirected(graph::MakeBinaryTree(8));
  BfsOptions opts;
  opts.collect_records = true;
  opts.direction = core::Direction::kPush;
  const auto r = Bfs(g, 0, opts);
  EXPECT_EQ(static_cast<int>(r.stats.records.size()),
            r.stats.iterations);
}

}  // namespace
}  // namespace gunrock
