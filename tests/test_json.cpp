// serve/json.hpp codec hardening: seeded adversarial inputs (hostile
// nesting, surrogate escapes, truncations, byte garbage) must never
// crash the parser, and everything the codec accepts must round-trip
// exactly — numbers bit-for-bit, strings byte-for-byte. Runs under the
// sanitizer CI matrix, where "never crash" means ASan/UBSan-clean too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "serve/json.hpp"

namespace gunrock {
namespace {

using serve::Json;

std::optional<Json> Parse(const std::string& text,
                          std::string* error = nullptr) {
  return Json::Parse(text, error);
}

double BitsToDouble(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

std::uint64_t DoubleToBits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

// --- fixed regression cases -------------------------------------------------

TEST(JsonTest, AcceptsWellFormedDocuments) {
  const char* cases[] = {
      "null",
      "true",
      "false",
      "0",
      "-0",
      "3.25",
      "1e-999",  // underflows to 0.0: finite, accepted
      "  [1, 2, 3]  ",
      R"("")",
      R"("plain")",
      R"({"a":[{"b":null}],"c":false})",
      R"("\" \\ \/ \b \f \n \r \t")",
      R"("\u0041\u00e9\u4e2d")",
      R"("\ud83d\ude00")",  // surrogate pair -> U+1F600
  };
  for (const char* text : cases) {
    std::string error;
    EXPECT_TRUE(Parse(text, &error).has_value()) << text << ": " << error;
  }
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const struct {
    const char* text;
    const char* expect;  // substring of the parse error
  } cases[] = {
      {"", "unexpected end"},
      {"   ", "unexpected end"},
      {"-", "bad number"},
      {"+1", "unexpected character"},
      {".5", "unexpected character"},
      {"1e", "bad number"},
      {"1e999", "bad number"},    // overflows to inf: non-finite, rejected
      {"-1e9999", "bad number"},  // -inf likewise
      {"inf", "unexpected character"},
      {"nan", "unexpected character"},
      {"tru", "unexpected character"},
      {"null x", "trailing garbage"},
      {"1 2", "trailing garbage"},
      {"[1,2", "expected ',' or ']'"},
      {"[1,]", "unexpected character"},
      {"{\"a\":}", "unexpected character"},
      {"{\"a\" 1}", "expected ':'"},
      {"{1:2}", "expected object key"},
      {"\"open", "unterminated string"},
      {"\"\\q\"", "bad escape"},
      {"\"\\u12g4\"", "bad hex digit"},
      {"\"\\u12\"", "truncated \\u escape"},  // too short to hold 4 digits
      {"\"\\ud800\"", "unpaired surrogate"},      // lone high
      {"\"\\udc00\"", "unpaired surrogate"},      // lone low
      {"\"\\ud800x\"", "unpaired surrogate"},     // high, no \u follows
      {"\"\\ud800\\u0041\"", "bad low surrogate"},
      {"\"\\ud800\\u", "truncated \\u escape"},
      {"\"\x01\"", "raw control character"},
      {"\"\n\"", "raw control character"},
  };
  for (const auto& c : cases) {
    std::string error;
    const auto parsed = Parse(c.text, &error);
    EXPECT_FALSE(parsed.has_value()) << c.text;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << c.text << ": missing '" << c.expect << "' in: " << error;
  }
}

TEST(JsonTest, SurrogatePairDecodesToUtf8) {
  const auto parsed = Parse(R"("\ud83d\ude00")");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->as_string(), "\xF0\x9F\x98\x80");  // U+1F600
  // And the raw UTF-8 bytes survive a dump/parse cycle untouched.
  const auto again = Parse(parsed->Dump());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->as_string(), parsed->as_string());
}

TEST(JsonTest, EscapedNulRoundTrips) {
  const auto parsed = Parse(R"("a\u0000b")");
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->as_string().size(), 3u);
  EXPECT_EQ(parsed->as_string()[1], '\0');
  const auto again = Parse(parsed->Dump());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->as_string(), parsed->as_string());
}

TEST(JsonTest, DepthCapRejectsHostileNestingBothSidesOfTheLine) {
  // Comfortably inside the cap: parses fine.
  std::string shallow(40, '[');
  shallow += std::string(40, ']');
  EXPECT_TRUE(Parse(shallow).has_value());

  // Far past the cap: rejected with the nesting error, no stack overflow.
  std::string deep(100000, '[');
  std::string error;
  EXPECT_FALSE(Parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;

  // Alternating object/array nesting hits the same cap.
  std::string mixed;
  for (int i = 0; i < 5000; ++i) mixed += "{\"k\":[";
  EXPECT_FALSE(Parse(mixed, &error).has_value());
}

// --- exact round-trips ------------------------------------------------------

TEST(JsonTest, NumbersRoundTripBitExact) {
  std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.1,
      1.0 / 3.0,
      3.141592653589793,
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::epsilon(),
      9007199254740992.0,   // 2^53
      9007199254740993.0,   // 2^53 + 1 (rounds to 2^53; still a double)
      -2.2250738585072011e-308,  // near-subnormal boundary
      1e-300,
      1e300,
  };
  std::mt19937_64 rng(0x6A50 + test::TestSeed());
  while (values.size() < 4096) {
    const double d = BitsToDouble(rng());
    if (std::isfinite(d)) values.push_back(d);
  }
  for (const double d : values) {
    const std::string text = Json(d).Dump();
    std::string error;
    const auto parsed = Parse(text, &error);
    ASSERT_TRUE(parsed) << text << ": " << error;
    ASSERT_TRUE(parsed->is_number()) << text;
    EXPECT_EQ(DoubleToBits(parsed->as_number()), DoubleToBits(d))
        << text << " reparsed as " << parsed->as_number();
  }
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  // JSON has no inf/nan literals; a Dump that emitted them would produce
  // lines the peer (and our own parser) reject. They degrade to null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");

  Json::Array a;
  a.push_back(Json(1.5));
  a.push_back(Json(std::numeric_limits<double>::infinity()));
  Json::Object o;
  o["dist"] = Json(std::move(a));
  const std::string dumped = Json(std::move(o)).Dump();
  EXPECT_EQ(dumped, R"({"dist":[1.5,null]})");
  EXPECT_TRUE(Parse(dumped).has_value()) << dumped;
}

TEST(JsonTest, ArbitraryByteStringsRoundTripExactly) {
  // Strings are byte sequences to this codec: control chars get escaped
  // on the way out, everything >= 0x20 (valid UTF-8 or not) passes
  // through raw. Either way the bytes must survive dump -> parse.
  std::mt19937_64 rng(0x1B17 + test::TestSeed());
  for (int i = 0; i < 512; ++i) {
    std::string s;
    const std::size_t len = rng() % 32;
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng() & 0xFF));
    }
    const std::string text = Json(s).Dump();
    std::string error;
    const auto parsed = Parse(text, &error);
    ASSERT_TRUE(parsed) << text << ": " << error;
    EXPECT_EQ(parsed->as_string(), s);
  }
}

// --- seeded adversarial generator -------------------------------------------

/// Builds a random valid document: bounded depth and fanout, strings with
/// escapes and multi-byte UTF-8, numbers from raw bit patterns.
Json RandomDocument(std::mt19937_64& rng, int depth) {
  const int kind = static_cast<int>(rng() % (depth >= 4 ? 4 : 6));
  switch (kind) {
    case 0: return Json();
    case 1: return Json((rng() & 1) != 0);
    case 2: {
      for (;;) {
        const double d = BitsToDouble(rng());
        if (std::isfinite(d)) return Json(d);
      }
    }
    case 3: {
      static const char* kStrings[] = {
          "", "plain", "with \"quotes\"", "tab\there", "\x01 control",
          "\xF0\x9F\x98\x80 emoji", "back\\slash", "nul\0byte",
      };
      const auto pick = rng() % (sizeof kStrings / sizeof kStrings[0]);
      if (pick == 7) return Json(std::string("nul\0byte", 8));
      return Json(kStrings[pick]);
    }
    case 4: {
      Json::Array a;
      const std::size_t n = rng() % 4;
      for (std::size_t i = 0; i < n; ++i) {
        a.push_back(RandomDocument(rng, depth + 1));
      }
      return Json(std::move(a));
    }
    default: {
      Json::Object o;
      const std::size_t n = rng() % 4;
      for (std::size_t i = 0; i < n; ++i) {
        std::string key = "k";
        key += std::to_string(rng() % 8);
        o[std::move(key)] = RandomDocument(rng, depth + 1);
      }
      return Json(std::move(o));
    }
  }
}

TEST(JsonTest, GeneratedDocumentsRoundTripThroughDumpAndParse) {
  std::mt19937_64 rng(0xD0C5 + test::TestSeed());
  for (int i = 0; i < 512; ++i) {
    const Json doc = RandomDocument(rng, 0);
    const std::string text = doc.Dump();
    std::string error;
    const auto parsed = Parse(text, &error);
    ASSERT_TRUE(parsed) << text << ": " << error;
    // Dump is deterministic (sorted object keys, shortest numbers), so
    // dump equality is document equality.
    EXPECT_EQ(parsed->Dump(), text);
  }
}

TEST(JsonTest, TruncatedDocumentsNeverCrash) {
  std::mt19937_64 rng(0x7A0C + test::TestSeed());
  for (int i = 0; i < 64; ++i) {
    const std::string text = RandomDocument(rng, 0).Dump();
    for (std::size_t cut = 0; cut < text.size(); ++cut) {
      // Most prefixes fail to parse, a few are valid ("[1,2" cut to
      // "[1" is not, "12" cut to "1" is); the claim is no crash either
      // way, which the sanitizer jobs sharpen into no-UB.
      (void)Parse(text.substr(0, cut));
    }
  }
}

TEST(JsonTest, MutatedDocumentsNeverCrash) {
  std::mt19937_64 rng(0xF1AE + test::TestSeed());
  for (int i = 0; i < 256; ++i) {
    std::string text = RandomDocument(rng, 0).Dump();
    if (text.empty()) continue;
    for (int flip = 0; flip < 8; ++flip) {
      text[rng() % text.size()] = static_cast<char>(rng() & 0xFF);
      (void)Parse(text);
    }
  }
}

TEST(JsonTest, RandomByteGarbageNeverCrashes) {
  std::mt19937_64 rng(0x6AB5 + test::TestSeed());
  for (int i = 0; i < 512; ++i) {
    std::string text;
    const std::size_t len = rng() % 64;
    for (std::size_t j = 0; j < len; ++j) {
      // Bias towards JSON's structural bytes so the fuzz actually walks
      // the parser instead of failing on byte one.
      static const char kStructural[] = "[]{}\",:\\u0019e-.tfn ";
      text.push_back((rng() & 1) != 0
                         ? kStructural[rng() % (sizeof kStructural - 1)]
                         : static_cast<char>(rng() & 0xFF));
    }
    (void)Parse(text);
  }
}

}  // namespace
}  // namespace gunrock
