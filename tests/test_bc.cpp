// Betweenness centrality vs serial Brandes, plus structural sanity
// (degree-1 leaves have zero BC, symmetry on symmetric graphs).
#include <gtest/gtest.h>

#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;
using test::Undirected;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Karate()
          .Path(64, /*source=*/5)
          .Star(40)
          .Grid(12, 12, /*source=*/3)
          .BinaryTree(7)
          .Rmat(10, 8, /*source=*/2)
          .Build());
  return *cases;
}

class BcParamTest : public ::testing::TestWithParam<
                        std::tuple<std::size_t, core::LoadBalance>> {};

std::string BcName(const ::testing::TestParamInfo<
                   std::tuple<std::size_t, core::LoadBalance>>& info) {
  std::string name = Cases()[std::get<0>(info.param)].name;
  name += "_";
  name += ToString(std::get<1>(info.param));
  return test::SafeTestName(std::move(name));
}

TEST_P(BcParamTest, SingleSourceMatchesBrandes) {
  const auto& [idx, lb] = GetParam();
  const auto& c = Cases()[idx];
  const vid_t src_list[] = {c.source};
  const auto expected = serial::Brandes(c.graph, src_list);

  BcOptions opts;
  opts.load_balance = lb;
  const auto got = Bc(c.graph, c.source, opts);
  ASSERT_EQ(got.bc.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(got.bc[v], expected[v], 1e-9 + 1e-9 * expected[v])
        << "vertex " << v;
  }
}

TEST_P(BcParamTest, MultiSourceMatchesBrandes) {
  const auto& [idx, lb] = GetParam();
  const auto& c = Cases()[idx];
  std::vector<vid_t> sources;
  for (vid_t s = 0; s < c.graph.num_vertices(); s += 7) {
    sources.push_back(s);
  }
  const auto expected = serial::Brandes(c.graph, sources);
  BcOptions opts;
  opts.load_balance = lb;
  const auto got = BcMultiSource(c.graph, sources, opts);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(got.bc[v], expected[v], 1e-8 + 1e-8 * expected[v])
        << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, BcParamTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 6),
                       ::testing::Values(core::LoadBalance::kThreadMapped,
                                         core::LoadBalance::kTwc,
                                         core::LoadBalance::kEqualWork,
                                         core::LoadBalance::kAuto)),
    BcName);

TEST(BcTest, PathCentralityClosedForm) {
  // On a path 0-1-...-n-1 with source s, exact all-pairs BC of vertex v
  // counts pairs routed through v; with a single source s=0, vertex v>0
  // carries (n-1-v) shortest paths from 0, each contributing 1/2.
  const vid_t n = 16;
  const auto g = Undirected(graph::MakePath(n));
  const auto got = Bc(g, 0);
  for (vid_t v = 1; v < n; ++v) {
    const double expected = static_cast<double>(n - 1 - v) / 2.0;
    EXPECT_NEAR(got.bc[v], expected, 1e-12) << "vertex " << v;
  }
}

TEST(BcTest, StarHubDominates) {
  const auto g = Undirected(graph::MakeStar(32));
  std::vector<vid_t> all(32);
  for (vid_t v = 0; v < 32; ++v) all[v] = v;
  const auto got = BcMultiSource(g, all);
  for (vid_t v = 1; v < 32; ++v) {
    EXPECT_NEAR(got.bc[v], 0.0, 1e-12);
    EXPECT_GT(got.bc[0], got.bc[v]);
  }
}

TEST(BcTest, NormalizationScales) {
  const auto g = Undirected(graph::MakeKarate());
  std::vector<vid_t> all(34);
  for (vid_t v = 0; v < 34; ++v) all[v] = v;
  BcOptions norm;
  norm.normalize = true;
  const auto plain = BcMultiSource(g, all);
  const auto scaled = BcMultiSource(g, all, norm);
  const double factor = (34.0 - 1) * (34.0 - 2) / 2.0;
  for (std::size_t v = 0; v < 34; ++v) {
    EXPECT_NEAR(scaled.bc[v], plain.bc[v] / factor, 1e-12);
  }
}

TEST(BcTest, DisconnectedSourceOnlyCoversItsComponent) {
  graph::PlantedPartitionParams p;
  p.num_clusters = 2;
  p.cluster_size = 40;
  const auto g = Undirected(
      GeneratePlantedPartition(p, par::ThreadPool::Global()));
  const auto got = Bc(g, 0);
  const auto cc = serial::ConnectedComponents(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cc.component[v] != cc.component[0]) {
      EXPECT_EQ(got.bc[v], 0.0) << "vertex " << v;
      EXPECT_EQ(got.depth[v], -1);
    }
  }
}

}  // namespace
}  // namespace gunrock
