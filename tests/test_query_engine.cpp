// QueryEngine: concurrent-submission determinism against direct calls,
// workspace-lease recycling, cancellation (explicit and deadline),
// admission-control backpressure, and failure paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using engine::BfsQuery;
using engine::CcQuery;
using engine::PagerankQuery;
using engine::QueryEngine;
using engine::QueryEngineOptions;
using engine::QueryHandle;
using engine::QueryStatus;
using engine::SsspQuery;

/// Scale-free fixture derived from GUNROCK_TEST_SEED, so the seed sweep
/// exercises the engine on different topologies.
graph::Csr MakeGraph(int scale = 10, int edge_factor = 8) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = 1000 + test::TestSeed();
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

std::vector<vid_t> PickSources(const graph::Csr& g, std::size_t count) {
  std::vector<vid_t> sources;
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vid_t>(
        (static_cast<std::int64_t>(i) * 997 + 1) % g.num_vertices()));
  }
  return sources;
}

/// A query that cannot finish within the test's patience: a negative
/// tolerance keeps every vertex in PageRank's frontier forever (the
/// residual is never > -1), so only cancellation or a deadline stops the
/// huge iteration budget.
PagerankQuery EndlessPagerank() {
  PagerankQuery q;
  q.opts.tolerance = -1.0;
  q.opts.max_iterations = 1 << 28;
  return q;
}

void SpinUntilRunning(const QueryHandle& h) {
  while (h.status() == QueryStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- determinism ------------------------------------------------------------

TEST(QueryEngineTest, ConcurrentResultsBitIdenticalToDirectCalls) {
  const graph::Csr g = MakeGraph();
  const auto sources = PickSources(g, 6);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 4;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  // Direct reference runs on the same pool the engine serves from — the
  // chunk grains (and so every reduction order) match by construction.
  BfsQuery bfs;
  bfs.opts.direction = core::Direction::kOptimizing;
  SsspQuery sssp;
  PagerankQuery pr;
  pr.opts.pull = true;  // gather-reduce: deterministic rank accumulation
  pr.opts.max_iterations = 30;
  CcQuery cc;

  // Saturate the engine with a mixed workload: every source submits a
  // BFS and an SSSP, plus one PageRank and one CC — all in flight
  // together before any result is consumed.
  std::vector<QueryHandle> bfs_handles;
  std::vector<QueryHandle> sssp_handles;
  for (const vid_t s : sources) {
    bfs_handles.push_back(engine.Submit("g", engine::WithSource(bfs, s)));
    sssp_handles.push_back(engine.Submit("g", engine::WithSource(sssp, s)));
  }
  QueryHandle pr_handle = engine.Submit("g", pr);
  QueryHandle cc_handle = engine.Submit("g", cc);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto& bfs_resp = bfs_handles[i].Wait();
    ASSERT_EQ(bfs_resp.status, QueryStatus::kDone) << bfs_resp.error;
    const auto& got_bfs = std::get<BfsResult>(bfs_resp.result);
    const auto want_bfs = Bfs(g, sources[i], bfs.opts);
    EXPECT_EQ(got_bfs.depth, want_bfs.depth) << "source " << sources[i];
    test::ExpectValidBfsTree(g, sources[i], got_bfs);

    const auto& sssp_resp = sssp_handles[i].Wait();
    ASSERT_EQ(sssp_resp.status, QueryStatus::kDone) << sssp_resp.error;
    const auto& got_sssp = std::get<SsspResult>(sssp_resp.result);
    const auto want_sssp = Sssp(g, sources[i], sssp.opts);
    EXPECT_EQ(got_sssp.dist, want_sssp.dist) << "source " << sources[i];
    EXPECT_EQ(got_sssp.pred, want_sssp.pred) << "source " << sources[i];
  }

  const auto& pr_resp = pr_handle.Wait();
  ASSERT_EQ(pr_resp.status, QueryStatus::kDone) << pr_resp.error;
  EXPECT_EQ(std::get<PagerankResult>(pr_resp.result).rank,
            Pagerank(g, pr.opts).rank);

  const auto& cc_resp = cc_handle.Wait();
  ASSERT_EQ(cc_resp.status, QueryStatus::kDone) << cc_resp.error;
  EXPECT_EQ(std::get<CcResult>(cc_resp.result).component,
            Cc(g, cc.opts).component);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2 * sources.size() + 2);
  EXPECT_EQ(stats.done, 2 * sources.size() + 2);
}

TEST(QueryEngineTest, SubmitAllMatchesPerSourceDirectCalls) {
  const graph::Csr g = MakeGraph(9, 6);
  const auto sources = PickSources(g, 8);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 4;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery proto;
  proto.opts.direction = core::Direction::kPush;
  auto handles = engine.SubmitAll("g", sources, proto);
  ASSERT_EQ(handles.size(), sources.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth,
              Bfs(g, sources[i], proto.opts).depth);
    // Latency accounting: the pieces exist and add up.
    EXPECT_GE(resp.queue_ms, 0.0);
    EXPECT_GE(resp.run_ms, 0.0);
    EXPECT_GE(resp.total_ms + 1e-6, resp.run_ms);
  }
}

// --- workspace leasing ------------------------------------------------------

TEST(QueryEngineTest, LeaseRecyclingStopsWorkspaceAllocation) {
  const graph::Csr g = MakeGraph(9, 6);
  const auto sources = PickSources(g, 4);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;  // one arena => deterministic warm-up coverage
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery bfs;
  SsspQuery sssp;
  PagerankQuery pr;
  pr.opts.pull = true;
  pr.opts.max_iterations = 5;

  // Warm-up: every query kind the steady workload will see.
  for (const vid_t s : sources) {
    engine.Submit("g", engine::WithSource(bfs, s)).Wait();
    engine.Submit("g", engine::WithSource(sssp, s)).Wait();
  }
  engine.Submit("g", pr).Wait();

  const auto warm = engine.workspace_stats();
  EXPECT_EQ(warm.created, 1u);
  EXPECT_GT(warm.workspace_creations, 0u);

  // Steady state: the same workload again. The one arena is recycled
  // through every lease and creates no new containers.
  for (const vid_t s : sources) {
    engine.Submit("g", engine::WithSource(bfs, s)).Wait();
    engine.Submit("g", engine::WithSource(sssp, s)).Wait();
  }
  engine.Submit("g", pr).Wait();

  const auto steady = engine.workspace_stats();
  EXPECT_EQ(steady.created, 1u);
  EXPECT_EQ(steady.workspace_creations, warm.workspace_creations)
      << "steady-state serving must not allocate workspace containers";
  EXPECT_EQ(steady.recycled, steady.acquired - 1);
  EXPECT_EQ(steady.outstanding, 0u);
}

TEST(QueryEngineTest, LeaseCountBoundedByInFlightLimit) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 3;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery proto;
  const auto sources = PickSources(g, 24);
  for (auto& h : engine.SubmitAll("g", sources, proto)) {
    ASSERT_EQ(h.Wait().status, QueryStatus::kDone);
  }
  const auto stats = engine.workspace_stats();
  EXPECT_LE(stats.created, 3u);
  EXPECT_EQ(stats.acquired, sources.size());
}

// --- cancellation -----------------------------------------------------------

TEST(QueryEngineTest, CancelMidRunReleasesTheEngine) {
  const graph::Csr g = MakeGraph(10, 8);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(endless);
  endless.Cancel();
  const auto& resp = endless.Wait();
  EXPECT_EQ(resp.status, QueryStatus::kCancelled);
  EXPECT_TRUE(
      std::holds_alternative<std::monostate>(resp.result));

  // The runner and its workspace lease are free again.
  BfsQuery bfs;
  const auto& after = engine.Submit("g", bfs).Wait();
  EXPECT_EQ(after.status, QueryStatus::kDone) << after.error;
  EXPECT_EQ(engine.workspace_stats().outstanding, 0u);
}

TEST(QueryEngineTest, CancelWhileQueuedNeverRuns) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(endless);
  auto queued = engine.Submit("g", EndlessPagerank());
  queued.Cancel();  // still waiting for the single runner
  endless.Cancel();
  EXPECT_EQ(queued.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(endless.Wait().status, QueryStatus::kCancelled);
}

TEST(QueryEngineTest, DeadlineStopsARunningQuery) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngine engine;
  engine.RegisterGraph("g", g);

  engine::SubmitOptions sopts;
  sopts.deadline_ms = 25.0;
  const auto& resp = engine.Submit("g", EndlessPagerank(), sopts).Wait();
  EXPECT_EQ(resp.status, QueryStatus::kDeadlineExceeded);
}

// --- admission control ------------------------------------------------------

TEST(QueryEngineTest, RejectPolicyFailsFastWhenQueueIsFull) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  eopts.queue_capacity = 1;
  eopts.backpressure = QueryEngineOptions::Backpressure::kReject;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto running = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(running);
  auto queued = engine.Submit("g", EndlessPagerank());
  auto rejected = engine.Submit("g", EndlessPagerank());

  const auto& resp = rejected.Wait();  // already terminal: returns at once
  EXPECT_EQ(resp.status, QueryStatus::kRejected);
  EXPECT_FALSE(resp.error.empty());
  EXPECT_EQ(engine.stats().rejected, 1u);

  queued.Cancel();
  running.Cancel();
  queued.Wait();
  running.Wait();
}

TEST(QueryEngineTest, BlockPolicyThrottlesButCompletesEverything) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 2;
  eopts.queue_capacity = 1;  // submitters block almost immediately
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery proto;
  const auto sources = PickSources(g, 12);
  auto handles = engine.SubmitAll("g", sources, proto);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth,
              Bfs(g, sources[i], proto.opts).depth);
  }
  EXPECT_EQ(engine.stats().done, sources.size());
}

// --- failure paths ----------------------------------------------------------

TEST(QueryEngineTest, UnknownGraphThrowsAtSubmit) {
  QueryEngine engine;
  EXPECT_THROW(engine.Submit("nope", BfsQuery{}), Error);
}

TEST(QueryEngineTest, PrimitiveErrorsSurfaceAsFailedQueries) {
  // Unweighted graph: SSSP's precondition check throws inside the runner.
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  p.seed = 7;
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  QueryEngine engine;
  engine.RegisterGraph("unweighted", graph::BuildCsr(coo, bopts));

  const auto& resp = engine.Submit("unweighted", SsspQuery{}).Wait();
  EXPECT_EQ(resp.status, QueryStatus::kFailed);
  EXPECT_NE(resp.error.find("weight"), std::string::npos) << resp.error;
  EXPECT_EQ(engine.stats().failed, 1u);
}

TEST(QueryEngineTest, ShutdownCancelsQueuedAndRefusesNewWork) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto running = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(running);
  auto queued = engine.Submit("g", BfsQuery{});
  running.Cancel();  // let Shutdown's join finish promptly
  engine.Shutdown();
  EXPECT_EQ(queued.Wait().status, QueryStatus::kCancelled);
  EXPECT_TRUE(running.Done());
  EXPECT_THROW(engine.Submit("g", BfsQuery{}), Error);
}

}  // namespace
}  // namespace gunrock
