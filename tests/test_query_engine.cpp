// QueryEngine: concurrent-submission determinism against direct calls,
// workspace-lease recycling, cancellation (explicit and deadline),
// admission-control backpressure, and failure paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using engine::BfsQuery;
using engine::CcQuery;
using engine::CompletionStream;
using engine::GraphOptions;
using engine::HitsQuery;
using engine::LabelPropagationQuery;
using engine::MstQuery;
using engine::PagerankQuery;
using engine::PprQuery;
using engine::QueryEngine;
using engine::QueryEngineOptions;
using engine::QueryHandle;
using engine::QueryStatus;
using engine::SalsaQuery;
using engine::SsspQuery;
using engine::TrianglesQuery;

/// Scale-free fixture derived from GUNROCK_TEST_SEED, so the seed sweep
/// exercises the engine on different topologies.
graph::Csr MakeGraph(int scale = 10, int edge_factor = 8) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = 1000 + test::TestSeed();
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

using test::SpreadSources;

/// A query that cannot finish within the test's patience: a negative
/// tolerance keeps every vertex in PageRank's frontier forever (the
/// residual is never > -1), so only cancellation or a deadline stops the
/// huge iteration budget.
PagerankQuery EndlessPagerank() {
  PagerankQuery q;
  q.opts.tolerance = -1.0;
  q.opts.max_iterations = 1 << 28;
  return q;
}

void SpinUntilRunning(const QueryHandle& h) {
  while (h.status() == QueryStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Endless HITS: a negative tolerance means the L1 movement test never
/// passes, so only cancellation or a deadline stops the huge iteration
/// budget — the ranking-family analog of EndlessPagerank().
HitsQuery EndlessHits() {
  HitsQuery q;
  q.opts.tolerance = -1.0;
  q.opts.max_iterations = 1 << 28;
  return q;
}

/// Two vertices, one edge: synchronous label propagation oscillates
/// between (0,1) and (1,0) forever, so an uncapped run only stops via
/// its RunControl token.
graph::Csr OscillatingLpGraph() {
  graph::Coo coo;
  coo.num_vertices = 2;
  coo.PushEdge(0, 1);
  return test::Undirected(std::move(coo));
}

using test::ExpectScoresMatch;

// --- determinism ------------------------------------------------------------

TEST(QueryEngineTest, ConcurrentResultsBitIdenticalToDirectCalls) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 6);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 4;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  // Direct reference runs on the same pool the engine serves from — the
  // chunk grains (and so every reduction order) match by construction.
  BfsQuery bfs;
  bfs.opts.direction = core::Direction::kOptimizing;
  SsspQuery sssp;
  PagerankQuery pr;
  pr.opts.pull = true;  // gather-reduce: deterministic rank accumulation
  pr.opts.max_iterations = 30;
  CcQuery cc;

  // Saturate the engine with a mixed workload: every source submits a
  // BFS and an SSSP, plus one PageRank and one CC — all in flight
  // together before any result is consumed.
  std::vector<QueryHandle> bfs_handles;
  std::vector<QueryHandle> sssp_handles;
  for (const vid_t s : sources) {
    bfs_handles.push_back(engine.Submit("g", engine::WithSource(bfs, s)));
    sssp_handles.push_back(engine.Submit("g", engine::WithSource(sssp, s)));
  }
  QueryHandle pr_handle = engine.Submit("g", pr);
  QueryHandle cc_handle = engine.Submit("g", cc);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto& bfs_resp = bfs_handles[i].Wait();
    ASSERT_EQ(bfs_resp.status, QueryStatus::kDone) << bfs_resp.error;
    const auto& got_bfs = std::get<BfsResult>(bfs_resp.result);
    const auto want_bfs = Bfs(g, sources[i], bfs.opts);
    EXPECT_EQ(got_bfs.depth, want_bfs.depth) << "source " << sources[i];
    test::ExpectValidBfsTree(g, sources[i], got_bfs);

    const auto& sssp_resp = sssp_handles[i].Wait();
    ASSERT_EQ(sssp_resp.status, QueryStatus::kDone) << sssp_resp.error;
    const auto& got_sssp = std::get<SsspResult>(sssp_resp.result);
    const auto want_sssp = Sssp(g, sources[i], sssp.opts);
    EXPECT_EQ(got_sssp.dist, want_sssp.dist) << "source " << sources[i];
    EXPECT_EQ(got_sssp.pred, want_sssp.pred) << "source " << sources[i];
  }

  const auto& pr_resp = pr_handle.Wait();
  ASSERT_EQ(pr_resp.status, QueryStatus::kDone) << pr_resp.error;
  EXPECT_EQ(std::get<PagerankResult>(pr_resp.result).rank,
            Pagerank(g, pr.opts).rank);

  const auto& cc_resp = cc_handle.Wait();
  ASSERT_EQ(cc_resp.status, QueryStatus::kDone) << cc_resp.error;
  EXPECT_EQ(std::get<CcResult>(cc_resp.result).component,
            Cc(g, cc.opts).component);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2 * sources.size() + 2);
  EXPECT_EQ(stats.done, 2 * sources.size() + 2);
}

TEST(QueryEngineTest, SubmitAllMatchesPerSourceDirectCalls) {
  const graph::Csr g = MakeGraph(9, 6);
  const auto sources = SpreadSources(g, 8);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 4;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery proto;
  proto.opts.direction = core::Direction::kPush;
  auto handles = engine.SubmitAll("g", sources, proto);
  ASSERT_EQ(handles.size(), sources.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth,
              Bfs(g, sources[i], proto.opts).depth);
    // Latency accounting: the pieces exist and add up.
    EXPECT_GE(resp.queue_ms, 0.0);
    EXPECT_GE(resp.run_ms, 0.0);
    EXPECT_GE(resp.total_ms + 1e-6, resp.run_ms);
  }
}

// --- workspace leasing ------------------------------------------------------

TEST(QueryEngineTest, LeaseRecyclingStopsWorkspaceAllocation) {
  const graph::Csr g = MakeGraph(9, 6);
  const auto sources = SpreadSources(g, 4);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;  // one arena => deterministic warm-up coverage
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery bfs;
  SsspQuery sssp;
  PagerankQuery pr;
  pr.opts.pull = true;
  pr.opts.max_iterations = 5;

  // Warm-up: every query kind the steady workload will see.
  for (const vid_t s : sources) {
    engine.Submit("g", engine::WithSource(bfs, s)).Wait();
    engine.Submit("g", engine::WithSource(sssp, s)).Wait();
  }
  engine.Submit("g", pr).Wait();

  const auto warm = engine.workspace_stats();
  EXPECT_EQ(warm.created, 1u);
  EXPECT_GT(warm.workspace_creations, 0u);

  // Steady state: the same workload again. The one arena is recycled
  // through every lease and creates no new containers.
  for (const vid_t s : sources) {
    engine.Submit("g", engine::WithSource(bfs, s)).Wait();
    engine.Submit("g", engine::WithSource(sssp, s)).Wait();
  }
  engine.Submit("g", pr).Wait();

  const auto steady = engine.workspace_stats();
  EXPECT_EQ(steady.created, 1u);
  EXPECT_EQ(steady.workspace_creations, warm.workspace_creations)
      << "steady-state serving must not allocate workspace containers";
  EXPECT_EQ(steady.recycled, steady.acquired - 1);
  EXPECT_EQ(steady.outstanding, 0u);
}

TEST(QueryEngineTest, LeaseCountBoundedByInFlightLimit) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 3;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery proto;
  const auto sources = SpreadSources(g, 24);
  for (auto& h : engine.SubmitAll("g", sources, proto)) {
    ASSERT_EQ(h.Wait().status, QueryStatus::kDone);
  }
  const auto stats = engine.workspace_stats();
  EXPECT_LE(stats.created, 3u);
  EXPECT_EQ(stats.acquired, sources.size());
}

// --- cancellation -----------------------------------------------------------

TEST(QueryEngineTest, CancelMidRunReleasesTheEngine) {
  const graph::Csr g = MakeGraph(10, 8);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(endless);
  endless.Cancel();
  const auto& resp = endless.Wait();
  EXPECT_EQ(resp.status, QueryStatus::kCancelled);
  EXPECT_TRUE(
      std::holds_alternative<std::monostate>(resp.result));

  // The runner and its workspace lease are free again.
  BfsQuery bfs;
  const auto& after = engine.Submit("g", bfs).Wait();
  EXPECT_EQ(after.status, QueryStatus::kDone) << after.error;
  EXPECT_EQ(engine.workspace_stats().outstanding, 0u);
}

TEST(QueryEngineTest, CancelWhileQueuedNeverRuns) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(endless);
  auto queued = engine.Submit("g", EndlessPagerank());
  queued.Cancel();  // still waiting for the single runner
  endless.Cancel();
  EXPECT_EQ(queued.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(endless.Wait().status, QueryStatus::kCancelled);
}

TEST(QueryEngineTest, DeadlineStopsARunningQuery) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngine engine;
  engine.RegisterGraph("g", g);

  engine::SubmitOptions sopts;
  sopts.deadline_ms = 25.0;
  const auto& resp = engine.Submit("g", EndlessPagerank(), sopts).Wait();
  EXPECT_EQ(resp.status, QueryStatus::kDeadlineExceeded);
}

// --- admission control ------------------------------------------------------

TEST(QueryEngineTest, RejectPolicyFailsFastWhenQueueIsFull) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  eopts.queue_capacity = 1;
  eopts.backpressure = QueryEngineOptions::Backpressure::kReject;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto running = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(running);
  auto queued = engine.Submit("g", EndlessPagerank());
  auto rejected = engine.Submit("g", EndlessPagerank());

  const auto& resp = rejected.Wait();  // already terminal: returns at once
  EXPECT_EQ(resp.status, QueryStatus::kRejected);
  EXPECT_FALSE(resp.error.empty());
  EXPECT_EQ(engine.stats().rejected, 1u);

  queued.Cancel();
  running.Cancel();
  queued.Wait();
  running.Wait();
}

TEST(QueryEngineTest, BlockPolicyThrottlesButCompletesEverything) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 2;
  eopts.queue_capacity = 1;  // submitters block almost immediately
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  BfsQuery proto;
  const auto sources = SpreadSources(g, 12);
  auto handles = engine.SubmitAll("g", sources, proto);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth,
              Bfs(g, sources[i], proto.opts).depth);
  }
  EXPECT_EQ(engine.stats().done, sources.size());
}

// --- failure paths ----------------------------------------------------------

TEST(QueryEngineTest, UnknownGraphThrowsAtSubmit) {
  QueryEngine engine;
  EXPECT_THROW(engine.Submit("nope", BfsQuery{}), Error);
}

TEST(QueryEngineTest, PrimitiveErrorsSurfaceAsFailedQueries) {
  // Unweighted graph: SSSP's precondition check throws inside the runner.
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  p.seed = 7;
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  QueryEngine engine;
  engine.RegisterGraph("unweighted", graph::BuildCsr(coo, bopts));

  const auto& resp = engine.Submit("unweighted", SsspQuery{}).Wait();
  EXPECT_EQ(resp.status, QueryStatus::kFailed);
  EXPECT_NE(resp.error.find("weight"), std::string::npos) << resp.error;
  EXPECT_EQ(engine.stats().failed, 1u);
}

TEST(QueryEngineTest, ShutdownCancelsQueuedAndRefusesNewWork) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto running = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(running);
  auto queued = engine.Submit("g", BfsQuery{});
  running.Cancel();  // let Shutdown's join finish promptly
  engine.Shutdown();
  EXPECT_EQ(queued.Wait().status, QueryStatus::kCancelled);
  EXPECT_TRUE(running.Done());
  EXPECT_THROW(engine.Submit("g", BfsQuery{}), Error);
}

// --- new primitive families (mst / triangles / lp / ranking) ----------------

TEST(QueryEngineTest, NewFamiliesServeBitIdenticalResults) {
  const graph::Csr g = MakeGraph(9, 6);
  const graph::Csr rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  const vid_t seed_vertex = SpreadSources(g, 1)[0];

  QueryEngineOptions eopts;
  eopts.max_in_flight = 4;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  MstQuery mst_filtered;
  MstQuery mst_scan;
  mst_scan.opts.variant = MstVariant::kScanAll;
  TrianglesQuery tri_merge;
  TrianglesQuery tri_hash;
  tri_hash.opts.variant = TriangleVariant::kHash;
  LabelPropagationQuery lp_frontier;
  lp_frontier.opts.max_iterations = 20;
  LabelPropagationQuery lp_sweep = lp_frontier;
  lp_sweep.opts.variant = LpVariant::kFullSweep;
  HitsQuery hits_l1;
  hits_l1.opts.max_iterations = 15;
  HitsQuery hits_l2 = hits_l1;
  hits_l2.opts.norm = HitsNorm::kL2;
  SalsaQuery salsa;
  salsa.opts.max_iterations = 15;
  PprQuery ppr;
  ppr.seeds = {seed_vertex};
  ppr.opts.max_iterations = 40;

  // Everything in flight together before any result is consumed.
  auto h_mst_f = engine.Submit("g", mst_filtered);
  auto h_mst_s = engine.Submit("g", mst_scan);
  auto h_tri_m = engine.Submit("g", tri_merge);
  auto h_tri_h = engine.Submit("g", tri_hash);
  auto h_lp_f = engine.Submit("g", lp_frontier);
  auto h_lp_s = engine.Submit("g", lp_sweep);
  auto h_hits1 = engine.Submit("g", hits_l1);
  auto h_hits2 = engine.Submit("g", hits_l2);
  auto h_salsa = engine.Submit("g", salsa);
  auto h_ppr = engine.Submit("g", ppr);

  // MST: identical forests per variant, and across variants (the packed
  // (weight, id) winner order is variant-invariant).
  const auto& mst_f_resp = h_mst_f.Wait();
  ASSERT_EQ(mst_f_resp.status, QueryStatus::kDone) << mst_f_resp.error;
  const auto& got_mst_f = std::get<MstResult>(mst_f_resp.result);
  const auto want_mst_f = Mst(g, mst_filtered.opts);
  EXPECT_EQ(got_mst_f.tree_edges, want_mst_f.tree_edges);
  EXPECT_DOUBLE_EQ(got_mst_f.total_weight, want_mst_f.total_weight);
  EXPECT_EQ(got_mst_f.num_components, want_mst_f.num_components);

  const auto& mst_s_resp = h_mst_s.Wait();
  ASSERT_EQ(mst_s_resp.status, QueryStatus::kDone) << mst_s_resp.error;
  const auto& got_mst_s = std::get<MstResult>(mst_s_resp.result);
  EXPECT_EQ(got_mst_s.tree_edges, Mst(g, mst_scan.opts).tree_edges);
  EXPECT_EQ(got_mst_s.tree_edges, got_mst_f.tree_edges)
      << "scan-all and filtered Boruvka must pick the same forest";

  // Triangles: exact tallies per variant and across variants.
  const auto& tri_m_resp = h_tri_m.Wait();
  ASSERT_EQ(tri_m_resp.status, QueryStatus::kDone) << tri_m_resp.error;
  const auto& got_tri_m = std::get<TriangleResult>(tri_m_resp.result);
  const auto want_tri = CountTriangles(g, tri_merge.opts);
  EXPECT_EQ(got_tri_m.num_triangles, want_tri.num_triangles);
  EXPECT_EQ(got_tri_m.per_vertex, want_tri.per_vertex);
  EXPECT_EQ(got_tri_m.clustering, want_tri.clustering);
  EXPECT_DOUBLE_EQ(got_tri_m.global_clustering,
                   want_tri.global_clustering);

  const auto& tri_h_resp = h_tri_h.Wait();
  ASSERT_EQ(tri_h_resp.status, QueryStatus::kDone) << tri_h_resp.error;
  const auto& got_tri_h = std::get<TriangleResult>(tri_h_resp.result);
  EXPECT_EQ(got_tri_h.num_triangles, want_tri.num_triangles);
  EXPECT_EQ(got_tri_h.per_vertex, want_tri.per_vertex);
  EXPECT_EQ(got_tri_h.stats.edges_visited, want_tri.stats.edges_visited);

  // Label propagation: identical labels per variant and across variants
  // (a non-frontier vertex would recompute the label it already holds).
  const auto& lp_f_resp = h_lp_f.Wait();
  ASSERT_EQ(lp_f_resp.status, QueryStatus::kDone) << lp_f_resp.error;
  const auto& got_lp_f =
      std::get<LabelPropagationResult>(lp_f_resp.result);
  const auto want_lp = LabelPropagation(g, lp_frontier.opts);
  EXPECT_EQ(got_lp_f.label, want_lp.label);
  EXPECT_EQ(got_lp_f.num_communities, want_lp.num_communities);
  EXPECT_EQ(got_lp_f.iterations, want_lp.iterations);

  const auto& lp_s_resp = h_lp_s.Wait();
  ASSERT_EQ(lp_s_resp.status, QueryStatus::kDone) << lp_s_resp.error;
  EXPECT_EQ(std::get<LabelPropagationResult>(lp_s_resp.result).label,
            want_lp.label)
      << "full-sweep and frontier LP must converge identically";

  // Ranking: exact on a single-lane pool, tight elsewhere (atomic double
  // accumulation order).
  const auto& hits1_resp = h_hits1.Wait();
  ASSERT_EQ(hits1_resp.status, QueryStatus::kDone) << hits1_resp.error;
  const auto want_hits1 = Hits(g, rg, hits_l1.opts);
  ExpectScoresMatch(want_hits1.hub,
                    std::get<HitsResult>(hits1_resp.result).hub);
  ExpectScoresMatch(want_hits1.authority,
                    std::get<HitsResult>(hits1_resp.result).authority);

  const auto& hits2_resp = h_hits2.Wait();
  ASSERT_EQ(hits2_resp.status, QueryStatus::kDone) << hits2_resp.error;
  const auto want_hits2 = Hits(g, rg, hits_l2.opts);
  ExpectScoresMatch(want_hits2.hub,
                    std::get<HitsResult>(hits2_resp.result).hub);

  const auto& salsa_resp = h_salsa.Wait();
  ASSERT_EQ(salsa_resp.status, QueryStatus::kDone) << salsa_resp.error;
  const auto want_salsa = Salsa(g, rg, salsa.opts);
  ExpectScoresMatch(want_salsa.authority,
                    std::get<SalsaResult>(salsa_resp.result).authority);

  const auto& ppr_resp = h_ppr.Wait();
  ASSERT_EQ(ppr_resp.status, QueryStatus::kDone) << ppr_resp.error;
  const auto want_ppr =
      PersonalizedPagerank(g, std::span<const vid_t>(ppr.seeds), ppr.opts);
  ExpectScoresMatch(want_ppr.rank,
                    std::get<PprResult>(ppr_resp.result).rank);

  EXPECT_EQ(engine.stats().done, 10u);
}

TEST(QueryEngineTest, RankingRunnerCancelsMidRun) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessHits());
  SpinUntilRunning(endless);
  endless.Cancel();
  const auto& resp = endless.Wait();
  EXPECT_EQ(resp.status, QueryStatus::kCancelled);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(resp.result));

  // Runner and lease are free again; the reverse-graph cache survives.
  const auto& after = engine.Submit("g", TrianglesQuery{}).Wait();
  EXPECT_EQ(after.status, QueryStatus::kDone) << after.error;
  EXPECT_EQ(engine.workspace_stats().outstanding, 0u);
}

TEST(QueryEngineTest, LabelPropagationCancelsMidRun) {
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("osc", OscillatingLpGraph());

  LabelPropagationQuery endless_lp;
  endless_lp.opts.max_iterations = 1 << 28;
  auto h = engine.Submit("osc", endless_lp);
  SpinUntilRunning(h);
  h.Cancel();
  EXPECT_EQ(h.Wait().status, QueryStatus::kCancelled);
}

TEST(QueryEngineTest, NewFamiliesCancelWhileQueued) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(endless);
  auto q_mst = engine.Submit("g", MstQuery{});
  auto q_tri = engine.Submit("g", TrianglesQuery{});
  auto q_lp = engine.Submit("g", LabelPropagationQuery{});
  auto q_hits = engine.Submit("g", HitsQuery{});
  q_mst.Cancel();
  q_tri.Cancel();
  q_lp.Cancel();
  q_hits.Cancel();
  endless.Cancel();
  EXPECT_EQ(q_mst.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(q_tri.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(q_lp.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(q_hits.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(endless.Wait().status, QueryStatus::kCancelled);
}

TEST(QueryEngineTest, DeadlineStopsRunningRankingQuery) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngine engine;
  engine.RegisterGraph("g", g);

  engine::SubmitOptions sopts;
  sopts.deadline_ms = 25.0;
  const auto& resp = engine.Submit("g", EndlessHits(), sopts).Wait();
  EXPECT_EQ(resp.status, QueryStatus::kDeadlineExceeded);
}

TEST(QueryEngineTest, DeadlineExpiresWhileNewFamiliesQueued) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto endless = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(endless);
  engine::SubmitOptions sopts;
  sopts.deadline_ms = 10.0;
  auto q_mst = engine.Submit("g", MstQuery{}, sopts);
  auto q_tri = engine.Submit("g", TrianglesQuery{}, sopts);
  // Let both deadlines lapse while the single runner is still occupied,
  // then release it: the queued queries must expire at pickup, never run.
  EXPECT_FALSE(q_mst.WaitForMs(30.0));
  endless.Cancel();
  EXPECT_EQ(q_mst.Wait().status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(q_tri.Wait().status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(endless.Wait().status, QueryStatus::kCancelled);
}

TEST(QueryEngineTest, LeaseRecyclingStableAcrossAllNineFamilies) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;  // one arena serves every family in turn
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  const vid_t s = SpreadSources(g, 1)[0];
  const auto run_all_families = [&] {
    BfsQuery bfs;
    bfs.source = s;
    ASSERT_EQ(engine.Submit("g", bfs).Wait().status, QueryStatus::kDone);
    SsspQuery sssp;
    sssp.source = s;
    ASSERT_EQ(engine.Submit("g", sssp).Wait().status, QueryStatus::kDone);
    engine::BcQuery bc;
    bc.source = s;
    ASSERT_EQ(engine.Submit("g", bc).Wait().status, QueryStatus::kDone);
    ASSERT_EQ(engine.Submit("g", CcQuery{}).Wait().status,
              QueryStatus::kDone);
    PagerankQuery pr;
    pr.opts.pull = true;
    pr.opts.max_iterations = 5;
    ASSERT_EQ(engine.Submit("g", pr).Wait().status, QueryStatus::kDone);
    MstQuery mst_scan;
    mst_scan.opts.variant = MstVariant::kScanAll;
    ASSERT_EQ(engine.Submit("g", MstQuery{}).Wait().status,
              QueryStatus::kDone);
    ASSERT_EQ(engine.Submit("g", mst_scan).Wait().status,
              QueryStatus::kDone);
    TrianglesQuery tri_hash;
    tri_hash.opts.variant = TriangleVariant::kHash;
    ASSERT_EQ(engine.Submit("g", TrianglesQuery{}).Wait().status,
              QueryStatus::kDone);
    ASSERT_EQ(engine.Submit("g", tri_hash).Wait().status,
              QueryStatus::kDone);
    LabelPropagationQuery lp;
    lp.opts.max_iterations = 10;
    ASSERT_EQ(engine.Submit("g", lp).Wait().status, QueryStatus::kDone);
    HitsQuery hits;
    hits.opts.max_iterations = 5;
    ASSERT_EQ(engine.Submit("g", hits).Wait().status, QueryStatus::kDone);
    SalsaQuery salsa;
    salsa.opts.max_iterations = 5;
    ASSERT_EQ(engine.Submit("g", salsa).Wait().status, QueryStatus::kDone);
    PprQuery ppr;
    ppr.seeds = {s};
    ppr.opts.max_iterations = 10;
    ASSERT_EQ(engine.Submit("g", ppr).Wait().status, QueryStatus::kDone);
  };

  // Warm-up: one query of every family (and every variant with its own
  // slots) through the single arena.
  run_all_families();
  const auto warm = engine.workspace_stats();
  EXPECT_EQ(warm.created, 1u);
  EXPECT_GT(warm.workspace_creations, 0u);

  // Steady state: the identical mixed workload recycles the arena with
  // zero container creations — every primitive's slots hold their types
  // no matter which family ran before (the pslot:: disjointness rule).
  run_all_families();
  const auto steady = engine.workspace_stats();
  EXPECT_EQ(steady.created, 1u);
  EXPECT_EQ(steady.workspace_creations, warm.workspace_creations)
      << "recycled leases must never re-type a slot across families";
  EXPECT_EQ(steady.outstanding, 0u);
}

// --- completion streaming ---------------------------------------------------

TEST(QueryEngineTest, StreamDeliversInFinishOrder) {
  // A heavy component plus isolated vertices: SSSP from an isolated
  // source finishes orders of magnitude before SSSP from inside the
  // component, so finish order must differ from submit order.
  graph::RmatParams p;
  p.scale = 14;
  p.edge_factor = 16;
  p.seed = 1000 + test::TestSeed();
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  const vid_t base = coo.num_vertices;
  coo.num_vertices += 3;  // three isolated vertices
  graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  const graph::Csr g = graph::BuildCsr(coo, bopts);

  QueryEngineOptions eopts;
  eopts.max_in_flight = 2;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  vid_t hub = 0;
  for (vid_t v = 1; v < base; ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  const std::vector<vid_t> sources = {hub, base, base + 1, base + 2};

  SsspQuery proto;
  auto stream = engine.SubmitAll("g", sources, proto, engine::kStream);
  ASSERT_EQ(stream.size(), sources.size());
  ASSERT_EQ(stream.handles().size(), sources.size());

  std::vector<std::size_t> finish_order;
  while (auto c = stream.Next()) {
    EXPECT_TRUE(c->handle.Done()) << "streamed completion not terminal";
    const auto& resp = c->handle.Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Sssp(g, sources[c->index], proto.opts);
    EXPECT_EQ(std::get<SsspResult>(resp.result).dist, want.dist)
        << "source " << sources[c->index];
    finish_order.push_back(c->index);
  }
  ASSERT_EQ(finish_order.size(), sources.size());
  EXPECT_EQ(stream.delivered(), sources.size());
  EXPECT_NE(finish_order.front(), 0u)
      << "an isolated-source SSSP must finish before the hub SSSP";
  // Exactly-once delivery.
  std::vector<std::size_t> sorted = finish_order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(QueryEngineTest, StreamDrainsAfterShutdown) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  const std::vector<vid_t> sources = {0, 1, 2};
  auto stream =
      engine.SubmitAll("g", sources, EndlessPagerank(), engine::kStream);
  SpinUntilRunning(stream.handles()[0]);

  // Shutdown on the side: it immediately fails the two queued queries
  // over to kCancelled (feeding the stream) and then blocks on the
  // running one until we cancel it.
  std::thread shutdown([&] { engine.Shutdown(); });
  auto first = stream.Next();
  auto second = stream.Next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->handle.Wait().status, QueryStatus::kCancelled);
  EXPECT_EQ(second->handle.Wait().status, QueryStatus::kCancelled);
  EXPECT_NE(first->index, 0u) << "the running query cannot finish first";

  stream.handles()[0].Cancel();
  auto third = stream.Next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->index, 0u);
  EXPECT_EQ(third->handle.Wait().status, QueryStatus::kCancelled);
  shutdown.join();

  EXPECT_FALSE(stream.Next().has_value()) << "batch already fully drained";
}

TEST(QueryEngineTest, AbandonedStreamIsReclaimed) {
  // Dropping a CompletionStream with undrained completions must not pin
  // the batch: Complete() severs each state's back-reference when it
  // feeds the stream, so the ASan leak check (CI) fails here if the
  // States and Shared ever form a cycle again.
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngine engine;
  engine.RegisterGraph("g", g);
  const std::vector<vid_t> sources = {0, 1, 2};
  {
    auto stream =
        engine.SubmitAll("g", sources, BfsQuery{}, engine::kStream);
    auto first = stream.Next();
    ASSERT_TRUE(first.has_value());
  }  // two completions never drained
  engine.Shutdown();  // remaining queries reach terminal states first
}

TEST(QueryEngineTest, StreamEmptyBatchDrainsImmediately) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngine engine;
  engine.RegisterGraph("g", g);
  auto stream = engine.SubmitAll("g", std::span<const vid_t>{},
                                 BfsQuery{}, engine::kStream);
  EXPECT_EQ(stream.size(), 0u);
  EXPECT_FALSE(stream.Next().has_value());
}

// --- per-graph admission quotas ---------------------------------------------

TEST(QueryEngineTest, GraphQuotaBlocksSubmitterUntilRelease) {
  const graph::Csr hot = MakeGraph(9, 6);
  const graph::Csr cold = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 4;
  QueryEngine engine(eopts);
  GraphOptions quota_one;
  quota_one.quota = 1;
  engine.RegisterGraph("hot", hot, quota_one);
  engine.RegisterGraph("cold", cold);

  auto occupant = engine.Submit("hot", EndlessPagerank());
  SpinUntilRunning(occupant);
  EXPECT_EQ(engine.GraphInFlight("hot"), 1u);

  // The quota gates only its own graph: another graph admits freely.
  EXPECT_EQ(engine.Submit("cold", BfsQuery{}).Wait().status,
            QueryStatus::kDone);

  std::atomic<bool> admitted{false};
  QueryHandle blocked;
  std::thread submitter([&] {
    blocked = engine.Submit("hot", BfsQuery{});
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load())
      << "second hot-graph query must block on the quota";

  occupant.Cancel();  // terminal transition releases the quota slot
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(blocked.Wait().status, QueryStatus::kDone);
  EXPECT_EQ(engine.GraphInFlight("hot"), 0u);
}

TEST(QueryEngineTest, GraphQuotaRejectsAndReleasesOnCancelAndFailure) {
  const graph::Csr g = MakeGraph(9, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 2;
  eopts.backpressure = QueryEngineOptions::Backpressure::kReject;
  QueryEngine engine(eopts);
  GraphOptions quota_one;
  quota_one.quota = 1;
  engine.RegisterGraph("g", g, quota_one);

  auto occupant = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(occupant);
  const auto& rejected = engine.Submit("g", BfsQuery{}).Wait();
  EXPECT_EQ(rejected.status, QueryStatus::kRejected);
  EXPECT_NE(rejected.error.find("quota"), std::string::npos)
      << rejected.error;
  EXPECT_EQ(engine.stats().rejected, 1u);

  // Released on cancellation...
  occupant.Cancel();
  occupant.Wait();
  EXPECT_EQ(engine.GraphInFlight("g"), 0u);
  EXPECT_EQ(engine.Submit("g", BfsQuery{}).Wait().status,
            QueryStatus::kDone);

  // ...and on failure (SSSP on an unweighted graph throws in the runner).
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  p.seed = 7;
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  engine.RegisterGraph("unweighted", graph::BuildCsr(coo, bopts),
                       quota_one);
  EXPECT_EQ(engine.Submit("unweighted", SsspQuery{}).Wait().status,
            QueryStatus::kFailed);
  EXPECT_EQ(engine.GraphInFlight("unweighted"), 0u);
  EXPECT_EQ(engine.Submit("unweighted", BfsQuery{}).Wait().status,
            QueryStatus::kDone);
}

}  // namespace
}  // namespace gunrock
