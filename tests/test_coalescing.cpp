// QueryEngine batch coalescing: compatible queued BFS/PPR queries merge
// into one multi-source wave and de-multiplex to their handles with
// results bit-identical to solo runs; per-lane cancellation and deadlines
// drop single lanes out of a running wave; incompatible or opted-out
// queries never merge. Plus CompletionStream::NextFor timeout semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using engine::BfsQuery;
using engine::CompletionStream;
using engine::PagerankQuery;
using engine::PprQuery;
using engine::QueryEngine;
using engine::QueryEngineOptions;
using engine::QueryHandle;
using engine::QueryStatus;
using engine::SubmitOptions;
using test::ExpectScoresMatch;
using test::SpreadSources;

graph::Csr MakeGraph(int scale = 10, int edge_factor = 8) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = 1000 + test::TestSeed();
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

/// Occupies the single runner so everything submitted behind it queues
/// up — the deterministic way to form one full wave at the next pickup.
PagerankQuery EndlessPagerank() {
  PagerankQuery q;
  q.opts.tolerance = -1.0;
  q.opts.max_iterations = 1 << 28;
  return q;
}

/// A PPR request that never converges (negative tolerance): the wave
/// runs until every lane is cancelled or hits its deadline — the probe
/// for mid-wave per-lane stopping.
PprQuery EndlessPpr() {
  PprQuery q;
  q.opts.tolerance = -1.0;
  q.opts.max_iterations = 1 << 28;
  return q;
}

BfsQuery CoalescibleBfs() {
  BfsQuery q;
  q.opts.compute_preds = false;  // BfsBatch extracts depths, not parents
  q.opts.direction = core::Direction::kOptimizing;
  return q;
}

void SpinUntilRunning(const QueryHandle& h) {
  while (h.status() == QueryStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(CoalescingTest, CoalescedBfsWaveBitIdenticalToDirect) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 32);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, CoalescibleBfs());
  blocker.Cancel();

  const BfsQuery proto = CoalescibleBfs();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth)
        << "query " << i;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.waves, 1u);
  EXPECT_EQ(stats.coalesced, sources.size());
  EXPECT_EQ(stats.max_wave, sources.size());
}

TEST(CoalescingTest, CoalescedPprWaveBitIdenticalToDirect) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 16);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  PprQuery proto;
  proto.opts.max_iterations = 25;
  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, proto);
  blocker.Cancel();

  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const std::vector<vid_t> seed = {sources[i]};
    const auto want = PersonalizedPagerank(g, seed, proto.opts);
    const auto& got = std::get<PprResult>(resp.result);
    EXPECT_EQ(got.iterations, want.iterations) << "query " << i;
    ExpectScoresMatch(want.rank, got.rank, "coalesced ppr");
  }
  EXPECT_EQ(engine.stats().waves, 1u);
  EXPECT_EQ(engine.stats().coalesced, sources.size());
}

TEST(CoalescingTest, QueuedCancelDropsLaneSurvivorsExact) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 8);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, CoalescibleBfs());
  handles[3].Cancel();  // still queued: the wave starts without this lane
  blocker.Cancel();

  const BfsQuery proto = CoalescibleBfs();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    if (i == 3) {
      EXPECT_EQ(resp.status, QueryStatus::kCancelled);
      continue;
    }
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
  }
}

TEST(CoalescingTest, MidWaveCancelDropsOnlyThatLane) {
  const graph::Csr g = MakeGraph(8, 6);
  const auto sources = SpreadSources(g, 4);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  // The small test graph may not read as scale-free, so force coalescing:
  // this test exercises wave mechanics, not the default gating.
  SubmitOptions copts;
  copts.coalesce = SubmitOptions::Coalesce::kOn;
  auto handles = engine.SubmitAll("g", sources, EndlessPpr(), copts);
  blocker.Cancel();
  SpinUntilRunning(handles[0]);  // the wave is on the runner now

  // One lane cancels mid-wave: its handle completes while the other
  // lanes keep iterating.
  handles[2].Cancel();
  EXPECT_EQ(handles[2].Wait().status, QueryStatus::kCancelled);
  EXPECT_FALSE(handles[0].Done());
  EXPECT_FALSE(handles[1].Done());
  EXPECT_FALSE(handles[3].Done());

  for (const auto& h : handles) h.Cancel();
  for (const auto& h : handles) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kCancelled);
  }
  EXPECT_EQ(engine.stats().waves, 1u);
}

TEST(CoalescingTest, PerLaneDeadlineFiresInsideWave) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  // Three open-ended lanes plus one with a tight deadline, merged into
  // one wave (Submit opts into coalescing explicitly).
  const auto sources = SpreadSources(g, 3);
  SubmitOptions copts;
  copts.coalesce = SubmitOptions::Coalesce::kOn;  // small graph: force it
  auto open = engine.SubmitAll("g", sources, EndlessPpr(), copts);
  SubmitOptions dopts;
  // Generous budget: the deadline must fire *inside* the wave (EndlessPpr
  // guarantees the wave is still running whenever it fires), never while
  // the query is still queued behind the blocker on a slow machine —
  // queued expiry would shrink the wave and flake the max_wave assert.
  dopts.deadline_ms = 500.0;
  dopts.coalesce = SubmitOptions::Coalesce::kOn;
  auto deadlined = engine.Submit("g", EndlessPpr(), dopts);
  blocker.Cancel();

  EXPECT_EQ(deadlined.Wait().status, QueryStatus::kDeadlineExceeded);
  EXPECT_FALSE(open[0].Done()) << "deadline must not stop other lanes";
  for (const auto& h : open) h.Cancel();
  for (const auto& h : open) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kCancelled);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.waves, 1u);
  EXPECT_EQ(stats.max_wave, 4u);
}

TEST(CoalescingTest, NonScaleFreeGraphSkipsWaveFormationByDefault) {
  // Wave formation is gated on the per-graph scale-free hint: a grid
  // reads as mesh-like (max degree ~= mean degree), so a default
  // SubmitAll runs every query solo. Coalesce::kOn still forces a wave
  // on the same graph.
  const graph::Csr g = test::Undirected(graph::MakeGrid(24, 24));
  const auto sources = SpreadSources(g, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("grid", g);

  auto blocker = engine.Submit("grid", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto solo = engine.SubmitAll("grid", sources, CoalescibleBfs());
  blocker.Cancel();
  const BfsQuery proto = CoalescibleBfs();
  for (std::size_t i = 0; i < solo.size(); ++i) {
    const auto& resp = solo[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
  }
  EXPECT_EQ(engine.stats().waves, 0u) << "mesh graphs must not form waves";
  EXPECT_EQ(engine.stats().coalesced, 0u);

  auto blocker2 = engine.Submit("grid", EndlessPagerank());
  SpinUntilRunning(blocker2);
  SubmitOptions copts;
  copts.coalesce = SubmitOptions::Coalesce::kOn;
  auto forced = engine.SubmitAll("grid", sources, CoalescibleBfs(), copts);
  blocker2.Cancel();
  for (std::size_t i = 0; i < forced.size(); ++i) {
    const auto& resp = forced[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.waves, 1u) << "kOn must force the wave despite the hint";
  EXPECT_EQ(stats.coalesced, sources.size());
}

TEST(CoalescingTest, EngineSwitchOffRunsEveryQuerySolo) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 8);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  eopts.coalescing = false;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, CoalescibleBfs());
  blocker.Cancel();
  const BfsQuery proto = CoalescibleBfs();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
  }
  EXPECT_EQ(engine.stats().waves, 0u);
  EXPECT_EQ(engine.stats().coalesced, 0u);
}

TEST(CoalescingTest, SubmitOptOutAndIneligibleRequestsStaySolo) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 6);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  // Opted out per submit.
  SubmitOptions off;
  off.coalesce = SubmitOptions::Coalesce::kOff;
  auto opted_out = engine.SubmitAll("g", sources, CoalescibleBfs(), off);
  // Ineligible: predecessors requested (a batched wave cannot reproduce
  // the scalar parent tree).
  BfsQuery with_preds;
  auto ineligible = engine.SubmitAll("g", sources, with_preds);
  blocker.Cancel();

  for (auto& h : opted_out) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kDone);
  }
  for (std::size_t i = 0; i < ineligible.size(); ++i) {
    const auto& resp = ineligible[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], with_preds.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
    EXPECT_EQ(std::get<BfsResult>(resp.result).pred, want.pred)
        << "solo runs keep returning predecessors";
  }
  EXPECT_EQ(engine.stats().waves, 0u);
}

TEST(CoalescingTest, IncompatibleOptionsFormSeparateWaves) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 4);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  PprQuery fast;
  fast.opts.max_iterations = 10;
  PprQuery slow;
  slow.opts.max_iterations = 20;

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto a = engine.SubmitAll("g", sources, fast);
  auto b = engine.SubmitAll("g", sources, slow);
  blocker.Cancel();

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::vector<vid_t> seed = {sources[i]};
    const auto& ra = a[i].Wait();
    ASSERT_EQ(ra.status, QueryStatus::kDone) << ra.error;
    const auto wa = PersonalizedPagerank(g, seed, fast.opts);
    EXPECT_EQ(std::get<PprResult>(ra.result).iterations, wa.iterations);
    ExpectScoresMatch(wa.rank, std::get<PprResult>(ra.result).rank);

    const auto& rb = b[i].Wait();
    ASSERT_EQ(rb.status, QueryStatus::kDone) << rb.error;
    const auto wb = PersonalizedPagerank(g, seed, slow.opts);
    EXPECT_EQ(std::get<PprResult>(rb.result).iterations, wb.iterations);
    ExpectScoresMatch(wb.rank, std::get<PprResult>(rb.result).rank);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.waves, 2u) << "one wave per option group, never mixed";
  EXPECT_EQ(stats.coalesced, 2 * sources.size());
  EXPECT_EQ(stats.max_wave, sources.size());
}

TEST(CoalescingTest, BadSourceFailsOnlyItsOwnLane) {
  // Submit never validates sources, so an out-of-range source reaches
  // the runner; inside a wave it must fail exactly like the solo
  // GR_CHECK path — its own query only, never the lanes merged with it.
  const graph::Csr g = MakeGraph();
  std::vector<vid_t> sources = SpreadSources(g, 6);
  sources[2] = g.num_vertices() + 7;  // poison one lane
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, CoalescibleBfs());
  blocker.Cancel();

  const BfsQuery proto = CoalescibleBfs();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    if (i == 2) {
      EXPECT_EQ(resp.status, QueryStatus::kFailed);
      EXPECT_NE(resp.error.find("out of range"), std::string::npos)
          << resp.error;
      continue;
    }
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[i], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.waves, 1u);
  EXPECT_EQ(stats.coalesced, sources.size() - 1);
}

TEST(CoalescingTest, WavesCapAtSixtyFourLanes) {
  const graph::Csr g = MakeGraph(9, 6);
  const auto sources = SpreadSources(g, 70);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  eopts.queue_capacity = 128;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, CoalescibleBfs());
  blocker.Cancel();
  for (auto& h : handles) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kDone);
  }
  const auto stats = engine.stats();
  EXPECT_LE(stats.max_wave, kMaxBatchLanes);
  EXPECT_GE(stats.waves, 2u);
  EXPECT_EQ(stats.coalesced, sources.size());
}

TEST(CoalescingTest, EmptyGraphWavesMatchSoloSemantics) {
  // The solo runners disagree on empty graphs: PersonalizedPagerank
  // succeeds with an empty result before its seed check, scalar Bfs
  // fails its source check first. Waves must mirror both.
  graph::Coo empty;
  empty.num_vertices = 0;
  const graph::Csr g = test::Undirected(std::move(empty));
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  const std::vector<vid_t> sources = {0, 0, 0};
  PprQuery ppr;
  ppr.opts.max_iterations = 5;
  for (auto& h : engine.SubmitAll("g", sources, ppr)) {
    const auto& resp = h.Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    EXPECT_TRUE(std::get<PprResult>(resp.result).rank.empty());
  }
  for (auto& h : engine.SubmitAll("g", sources, CoalescibleBfs())) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kFailed);
  }
}

TEST(CoalescingTest, MemoryBudgetCapsLanes) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 12);
  const auto n = static_cast<std::size_t>(g.num_vertices());

  // Budget for exactly three PPR lanes: 12n fixed (inv_out +
  // all-vertices) plus 16n per lane — a 12-query fan-out must split
  // into waves of at most 3.
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  eopts.coalesce_budget_bytes = 12 * n + 3 * 16 * n;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  PprQuery proto;
  proto.opts.max_iterations = 10;
  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto handles = engine.SubmitAll("g", sources, proto);
  blocker.Cancel();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& resp = handles[i].Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const std::vector<vid_t> seed = {sources[i]};
    const auto want = PersonalizedPagerank(g, seed, proto.opts);
    EXPECT_EQ(std::get<PprResult>(resp.result).iterations,
              want.iterations);
    ExpectScoresMatch(want.rank, std::get<PprResult>(resp.result).rank);
  }
  const auto stats = engine.stats();
  EXPECT_LE(stats.max_wave, 3u);
  EXPECT_GE(stats.waves, 4u) << "12 queries at <= 3 lanes each";

  // A budget below two lanes disables merging outright.
  QueryEngineOptions tiny;
  tiny.max_in_flight = 1;
  tiny.coalesce_budget_bytes = 12 * n + 16 * n;
  QueryEngine solo_engine(tiny);
  solo_engine.RegisterGraph("g", g);
  auto b2 = solo_engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(b2);
  auto solo = solo_engine.SubmitAll("g", sources, proto);
  b2.Cancel();
  for (auto& h : solo) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kDone);
  }
  EXPECT_EQ(solo_engine.stats().waves, 0u);

  // BFS waves carry ~36n of lane-mask state regardless of width; a
  // budget below that fixed cost must disable BFS merging too.
  auto b3 = solo_engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(b3);
  auto bfs_solo = solo_engine.SubmitAll("g", sources, CoalescibleBfs());
  b3.Cancel();
  for (auto& h : bfs_solo) {
    EXPECT_EQ(h.Wait().status, QueryStatus::kDone);
  }
  EXPECT_EQ(solo_engine.stats().waves, 0u);
}

TEST(CoalescingTest, StreamedBatchCoalescesAndDrains) {
  const graph::Csr g = MakeGraph();
  const auto sources = SpreadSources(g, 12);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto stream = engine.SubmitAll("g", sources, CoalescibleBfs(),
                                 engine::kStream);
  blocker.Cancel();

  const BfsQuery proto = CoalescibleBfs();
  std::size_t seen = 0;
  while (auto c = stream.Next()) {
    const auto& resp = c->handle.Wait();
    ASSERT_EQ(resp.status, QueryStatus::kDone) << resp.error;
    const auto want = Bfs(g, sources[c->index], proto.opts);
    EXPECT_EQ(std::get<BfsResult>(resp.result).depth, want.depth);
    ++seen;
  }
  EXPECT_EQ(seen, sources.size());
  EXPECT_EQ(engine.stats().waves, 1u);
}

// --- CompletionStream::NextFor ----------------------------------------------

TEST(NextForTest, TimesOutOnAQuietStreamThenDelivers) {
  const graph::Csr g = MakeGraph(8, 6);
  const auto sources = SpreadSources(g, 2);
  QueryEngineOptions eopts;
  eopts.max_in_flight = 1;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);

  auto blocker = engine.Submit("g", EndlessPagerank());
  SpinUntilRunning(blocker);
  auto stream = engine.SubmitAll("g", sources, CoalescibleBfs(),
                                 engine::kStream);

  // Quiet stream: the blocker owns the runner, nothing can complete.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(stream.NextFor(30.0).has_value());
  const double waited =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 29.0) << "NextFor must actually wait out its budget";
  EXPECT_EQ(stream.delivered(), 0u) << "a timeout consumes nothing";

  blocker.Cancel();
  std::size_t seen = 0;
  while (seen < sources.size()) {
    if (auto c = stream.NextFor(10000.0)) {
      EXPECT_EQ(c->handle.Wait().status, QueryStatus::kDone);
      ++seen;
    } else {
      FAIL() << "stream went quiet with completions outstanding";
    }
  }
  EXPECT_FALSE(stream.NextFor(10000.0).has_value())
      << "a drained stream returns immediately";
  EXPECT_EQ(stream.delivered(), stream.size());
}

TEST(NextForTest, EmptyBatchReturnsImmediately) {
  const graph::Csr g = MakeGraph(8, 6);
  QueryEngineOptions eopts;
  QueryEngine engine(eopts);
  engine.RegisterGraph("g", g);
  auto stream = engine.SubmitAll("g", std::span<const vid_t>{},
                                 CoalescibleBfs(), engine::kStream);
  EXPECT_FALSE(stream.NextFor(10000.0).has_value());
  EXPECT_FALSE(CompletionStream{}.NextFor(1.0).has_value());
}

}  // namespace
}  // namespace gunrock
