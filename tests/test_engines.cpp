// The comparison frameworks (GAS, Pregel, hardwired) must compute the
// same answers as the serial oracles — they differ in *how*, which is the
// point of the paper's cross-framework benchmarks.
#include <gtest/gtest.h>

#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr Weighted(graph::Coo coo, std::uint64_t seed = 7) {
  graph::AttachRandomWeights(coo, 1, 64, seed);
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

graph::Csr Undirected(graph::Coo coo) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

graph::Csr TestGraph(int idx) {
  switch (idx) {
    case 0: return Weighted(graph::MakeKarate());
    case 1: return Weighted(graph::MakeGrid(20, 20));
    case 2: {
      graph::RmatParams p;
      p.scale = 11;
      p.edge_factor = 8;
      return Weighted(GenerateRmat(p, par::ThreadPool::Global()));
    }
    case 3: {
      graph::PlantedPartitionParams p;
      p.num_clusters = 4;
      p.cluster_size = 64;
      return Weighted(
          GeneratePlantedPartition(p, par::ThreadPool::Global()));
    }
    default: return Weighted(graph::MakePath(100));
  }
}

class EngineParamTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineParamTest, GasBfsMatchesSerial) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Bfs(g, 0);
  const auto got = gas::Bfs(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.depth.size(); ++v) {
    EXPECT_EQ(got.depth[v], expected.depth[v]) << "vertex " << v;
  }
  EXPECT_GT(got.stats.supersteps, 0);
}

TEST_P(EngineParamTest, GasSsspMatchesDijkstra) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Dijkstra(g, 0);
  const auto got = gas::Sssp(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.dist.size(); ++v) {
    EXPECT_FLOAT_EQ(got.dist[v], expected.dist[v]) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, GasPagerankMatchesSerial) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Pagerank(g);
  const auto got = gas::Pagerank(g, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.rank.size(); ++v) {
    EXPECT_NEAR(got.rank[v], expected.rank[v], 1e-6) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, GasCcMatchesUnionFind) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::ConnectedComponents(g);
  const auto got = gas::Cc(g, par::ThreadPool::Global());
  EXPECT_EQ(got.num_components, expected.num_components);
  for (std::size_t v = 0; v < expected.component.size(); ++v) {
    EXPECT_EQ(got.component[v], expected.component[v]) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, PregelBfsMatchesSerial) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Bfs(g, 0);
  const auto got = pregel::Bfs(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.depth.size(); ++v) {
    EXPECT_EQ(got.depth[v], expected.depth[v]) << "vertex " << v;
  }
  EXPECT_GT(got.stats.messages_sent, 0);
}

TEST_P(EngineParamTest, PregelSsspMatchesDijkstra) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Dijkstra(g, 0);
  const auto got = pregel::Sssp(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.dist.size(); ++v) {
    EXPECT_FLOAT_EQ(got.dist[v], expected.dist[v]) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, PregelPagerankMatchesSerial) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Pagerank(g);
  const auto got = pregel::Pagerank(g, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.rank.size(); ++v) {
    EXPECT_NEAR(got.rank[v], expected.rank[v], 1e-6) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, HardwiredBfsMatchesSerial) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Bfs(g, 0);
  const auto got = hardwired::Bfs(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.depth.size(); ++v) {
    EXPECT_EQ(got.depth[v], expected.depth[v]) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, HardwiredSsspMatchesDijkstra) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::Dijkstra(g, 0);
  const auto got = hardwired::Sssp(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.dist.size(); ++v) {
    EXPECT_FLOAT_EQ(got.dist[v], expected.dist[v]) << "vertex " << v;
  }
}

TEST_P(EngineParamTest, HardwiredBcMatchesBrandes) {
  const auto g = TestGraph(GetParam());
  const vid_t src_list[] = {0};
  const auto expected = serial::Brandes(g, src_list);
  const auto got = hardwired::Bc(g, 0, par::ThreadPool::Global());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(got.bc[v], expected[v], 1e-9 + 1e-9 * expected[v])
        << "vertex " << v;
  }
}

TEST_P(EngineParamTest, HardwiredCcMatchesUnionFind) {
  const auto g = TestGraph(GetParam());
  const auto expected = serial::ConnectedComponents(g);
  const auto got = hardwired::Cc(g, par::ThreadPool::Global());
  EXPECT_EQ(got.num_components, expected.num_components);
  for (std::size_t v = 0; v < expected.component.size(); ++v) {
    EXPECT_EQ(got.component[v], expected.component[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, EngineParamTest,
                         ::testing::Range(0, 5));

TEST(EngineContractTest, GasReportsVertexMappedEfficiency) {
  // A star graph is the worst case for a vertex-mapped gather: one hub
  // with degree n-1 among leaves of degree 1.
  const auto star = Undirected(graph::MakeStar(2048));
  const auto got = gas::Bfs(star, 1, par::ThreadPool::Global());
  EXPECT_LT(got.stats.lane_efficiency, 0.5);

  // A cycle is perfectly regular: near-perfect lane efficiency.
  const auto cycle = Undirected(graph::MakeCycle(2048));
  const auto reg = gas::Bfs(cycle, 0, par::ThreadPool::Global());
  EXPECT_GT(reg.stats.lane_efficiency, 0.9);
}

TEST(EngineContractTest, GasSweepsFullEdgeListEverySuperstep) {
  const auto g = Undirected(graph::MakePath(64));
  const auto got = gas::Bfs(g, 0, par::ThreadPool::Global());
  // Path BFS needs ~n supersteps, each sweeping all edges: the GAS cost
  // model the paper criticizes.
  EXPECT_EQ(got.stats.edges_processed,
            static_cast<eid_t>(got.stats.supersteps) * g.num_edges());
}

TEST(EngineContractTest, PregelMessageCountTracksFrontierWork) {
  const auto g = Undirected(graph::MakeStar(100));
  const auto got = pregel::Bfs(g, 0, par::ThreadPool::Global());
  // Superstep 0: hub sends 99 messages; superstep 1: 99 leaves send back.
  EXPECT_EQ(got.stats.messages_sent, 99 + 99);
}

}  // namespace
}  // namespace gunrock
