// Graph coloring (properness), maximal independent set (independence +
// maximality) and k-core decomposition (vs a serial peeling oracle).
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr Undirected(graph::Coo coo) {
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

graph::Csr TestGraph(int idx) {
  switch (idx) {
    case 0: return Undirected(graph::MakeKarate());
    case 1: return Undirected(graph::MakeCycle(101));
    case 2: return Undirected(graph::MakeStar(64));
    case 3: return Undirected(graph::MakeComplete(17));
    case 4: return Undirected(graph::MakeGrid(15, 15));
    case 5: {
      graph::RmatParams p;
      p.scale = 11;
      p.edge_factor = 8;
      return Undirected(GenerateRmat(p, par::ThreadPool::Global()));
    }
    case 6: {
      graph::RggParams p;
      p.scale = 11;
      return Undirected(GenerateRgg(p, par::ThreadPool::Global()));
    }
    default: return Undirected(graph::MakePath(50));
  }
}

class SetsParamTest : public ::testing::TestWithParam<int> {};

TEST_P(SetsParamTest, ColoringIsProperAndComplete) {
  const auto g = TestGraph(GetParam());
  const auto got = GraphColoring(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(got.color[v], 0) << "vertex " << v << " uncolored";
    ASSERT_LT(got.color[v], got.num_colors);
    for (const vid_t u : g.neighbors(v)) {
      if (u != v) {
        EXPECT_NE(got.color[v], got.color[u])
            << "edge (" << v << "," << u << ") monochromatic";
      }
    }
  }
  EXPECT_GT(got.rounds, 0);
}

TEST_P(SetsParamTest, ColoringIsDeterministicPerSeed) {
  const auto g = TestGraph(GetParam());
  const auto a = GraphColoring(g);
  const auto b = GraphColoring(g);
  EXPECT_EQ(a.color, b.color);
  ColoringOptions other;
  other.seed = 99;
  const auto c = GraphColoring(g, other);
  EXPECT_EQ(c.num_colors > 0, true);  // different seed still proper
}

TEST_P(SetsParamTest, MisIsIndependentAndMaximal) {
  const auto g = TestGraph(GetParam());
  const auto got = MaximalIndependentSet(g);
  // Independence: no two adjacent members.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (!got.in_set[v]) continue;
    for (const vid_t u : g.neighbors(v)) {
      if (u != v) {
        EXPECT_FALSE(got.in_set[u])
            << "adjacent members " << v << " and " << u;
      }
    }
  }
  // Maximality: every non-member has a member neighbor.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (got.in_set[v]) continue;
    bool covered = false;
    for (const vid_t u : g.neighbors(v)) {
      if (got.in_set[u]) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "vertex " << v << " uncovered";
  }
  EXPECT_GT(got.set_size, 0);
}

// Serial peel oracle for core numbers.
std::vector<std::int32_t> SerialCoreNumbers(const graph::Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<std::int64_t> deg(n);
  std::vector<std::int32_t> core(n, 0);
  std::vector<char> dead(n, 0);
  for (vid_t v = 0; v < n; ++v) deg[v] = g.degree(v);
  for (std::int32_t k = 1;; ++k) {
    bool alive_left = false;
    std::queue<vid_t> peel;
    for (vid_t v = 0; v < n; ++v) {
      if (!dead[v]) {
        alive_left = true;
        if (deg[v] < k) peel.push(v);
      }
    }
    if (!alive_left) break;
    while (!peel.empty()) {
      const vid_t v = peel.front();
      peel.pop();
      if (dead[v]) continue;
      dead[v] = 1;
      core[v] = k - 1;
      for (const vid_t u : g.neighbors(v)) {
        if (!dead[u] && --deg[u] < k) peel.push(u);
      }
    }
  }
  return core;
}

TEST_P(SetsParamTest, KCoreMatchesSerialPeeling) {
  const auto g = TestGraph(GetParam());
  const auto expected = SerialCoreNumbers(g);
  const auto got = KCore(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(got.core[v], expected[v]) << "vertex " << v;
  }
  EXPECT_EQ(got.degeneracy,
            *std::max_element(expected.begin(), expected.end()));
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SetsParamTest, ::testing::Range(0, 8));

TEST(SetsTest, CompleteGraphNeedsNColors) {
  const auto g = Undirected(graph::MakeComplete(12));
  const auto got = GraphColoring(g);
  EXPECT_EQ(got.num_colors, 12);
}

TEST(SetsTest, StarNeedsTwoColors) {
  const auto g = Undirected(graph::MakeStar(50));
  const auto got = GraphColoring(g);
  EXPECT_EQ(got.num_colors, 2);
}

TEST(SetsTest, MisOnCompleteGraphIsSingleton) {
  const auto g = Undirected(graph::MakeComplete(20));
  const auto got = MaximalIndependentSet(g);
  EXPECT_EQ(got.set_size, 1);
}

TEST(SetsTest, KCoreOfCompleteGraph) {
  const auto g = Undirected(graph::MakeComplete(10));
  const auto got = KCore(g);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(got.core[v], 9);
  EXPECT_EQ(got.degeneracy, 9);
}

TEST(SetsTest, KCoreOfTreeIsOne) {
  const auto g = Undirected(graph::MakeBinaryTree(8));
  const auto got = KCore(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(got.core[v], 1) << "vertex " << v;
  }
}

}  // namespace
}  // namespace gunrock
