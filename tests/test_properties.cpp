// Cross-primitive metamorphic and structural properties — invariants that
// must hold regardless of the workload-mapping strategy or topology.
#include <gtest/gtest.h>

#include <numeric>

#include "gunrock.hpp"

namespace gunrock {
namespace {

graph::Csr Weighted(graph::Coo coo, std::uint64_t seed = 7) {
  graph::AttachRandomWeights(coo, 1, 64, seed);
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

class PropertySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

graph::Csr SeededGraph(std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = seed;
  return Weighted(GenerateRmat(p, par::ThreadPool::Global()), seed * 31);
}

TEST_P(PropertySeedTest, BfsDepthsLipschitzAcrossEdges) {
  // |depth(u) - depth(v)| <= 1 for every edge in the reached subgraph.
  const auto g = SeededGraph(GetParam());
  const auto r = Bfs(g, 0);
  const auto srcs = g.edge_sources(par::ThreadPool::Global());
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const auto du = r.depth[srcs[static_cast<std::size_t>(e)]];
    const auto dv = r.depth[g.col_indices()[e]];
    if (du < 0 || dv < 0) {
      // Reachability is edge-connected: both sides agree.
      EXPECT_EQ(du < 0, dv < 0);
      continue;
    }
    EXPECT_LE(std::abs(du - dv), 1) << "edge " << e;
  }
}

TEST_P(PropertySeedTest, SsspTriangleInequalityAtFixpoint) {
  // dist is a fixpoint of relaxation: dist[v] <= dist[u] + w(u,v).
  const auto g = SeededGraph(GetParam());
  const auto r = Sssp(g, 0);
  const auto srcs = g.edge_sources(par::ThreadPool::Global());
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const auto du = r.dist[srcs[static_cast<std::size_t>(e)]];
    const auto dv = r.dist[g.col_indices()[e]];
    if (du == kInfinity) continue;
    EXPECT_LE(dv, du + g.edge_weight(e)) << "edge " << e;
  }
}

TEST_P(PropertySeedTest, SsspUpperBoundsBfsTimesMaxWeight) {
  // Unit-hop count times max weight bounds the weighted distance, and
  // weighted distance is at least the hop count (weights >= 1).
  const auto g = SeededGraph(GetParam());
  const auto bfs = Bfs(g, 0);
  const auto sssp = Sssp(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (bfs.depth[v] < 0) {
      EXPECT_EQ(sssp.dist[v], kInfinity);
      continue;
    }
    EXPECT_GE(sssp.dist[v], static_cast<weight_t>(bfs.depth[v]));
    EXPECT_LE(sssp.dist[v],
              static_cast<weight_t>(bfs.depth[v]) * 64.0f);
  }
}

TEST_P(PropertySeedTest, CcAgreesWithBfsReachability) {
  const auto g = SeededGraph(GetParam());
  const auto cc = Cc(g);
  const auto bfs = Bfs(g, 0);
  const vid_t comp0 = cc.component[0];
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(bfs.depth[v] >= 0, cc.component[v] == comp0)
        << "vertex " << v;
  }
}

TEST_P(PropertySeedTest, BcZeroOnDegreeOneLeavesOfTree) {
  // On trees, a leaf never lies on another pair's shortest path.
  graph::RmatParams unused;
  (void)unused;
  const auto g = Weighted(graph::MakeBinaryTree(9), GetParam());
  std::vector<vid_t> sources(g.num_vertices());
  std::iota(sources.begin(), sources.end(), 0);
  const auto bc = BcMultiSource(g, sources);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 1) {
      EXPECT_NEAR(bc.bc[v], 0.0, 1e-9) << "leaf " << v;
    } else {
      EXPECT_GT(bc.bc[v], 0.0) << "internal " << v;
    }
  }
}

TEST_P(PropertySeedTest, PagerankPreservesDegreeOrderOnLeaves) {
  // Vertices with identical neighborhoods get identical ranks.
  const auto g = Weighted(graph::MakeStar(128), GetParam());
  const auto pr = Pagerank(g);
  for (vid_t v = 2; v < 128; ++v) {
    EXPECT_NEAR(pr.rank[v], pr.rank[1], 1e-12);
  }
}

TEST_P(PropertySeedTest, KCoreBoundsColoringAndDegeneracyOrder) {
  // Greedy coloring needs at most degeneracy+1 colors... for *sequential*
  // degeneracy ordering. Jones-Plassmann does not guarantee that bound,
  // but coloring can never beat clique lower bounds: colors >= core+1 is
  // false in general either; what always holds: max core >= colors-1 is
  // NOT guaranteed, while colors <= max_degree + 1 is. Check that, plus
  // core <= degree per vertex.
  const auto g = SeededGraph(GetParam());
  const auto kcore = KCore(g);
  const auto coloring = GraphColoring(g);
  eid_t max_deg = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    EXPECT_LE(kcore.core[v], g.degree(v)) << "vertex " << v;
  }
  EXPECT_LE(coloring.num_colors, static_cast<std::int32_t>(max_deg) + 1);
  EXPECT_LE(kcore.degeneracy, static_cast<std::int32_t>(max_deg));
}

TEST_P(PropertySeedTest, MstWeightInvariantUnderStrategy) {
  const auto g = SeededGraph(GetParam());
  const auto kruskal = serial::KruskalMst(g);
  const auto boruvka = Mst(g);
  EXPECT_NEAR(boruvka.total_weight, kruskal.total_weight,
              1e-6 * kruskal.total_weight);
}

TEST_P(PropertySeedTest, StrategiesAgreeOnEveryPrimitive) {
  // The workload-mapping strategy is performance-only: results identical.
  const auto g = SeededGraph(GetParam());
  const core::LoadBalance strategies[] = {
      core::LoadBalance::kThreadMapped, core::LoadBalance::kTwc,
      core::LoadBalance::kEqualWork};
  BfsOptions bfs_base;
  bfs_base.load_balance = core::LoadBalance::kAuto;
  const auto bfs_ref = Bfs(g, 0, bfs_base);
  SsspOptions sssp_base;
  const auto sssp_ref = Sssp(g, 0, sssp_base);
  for (const auto lb : strategies) {
    BfsOptions b;
    b.load_balance = lb;
    EXPECT_EQ(Bfs(g, 0, b).depth, bfs_ref.depth);
    SsspOptions s;
    s.load_balance = lb;
    EXPECT_EQ(Sssp(g, 0, s).dist, sssp_ref.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ExceptionSafetyTest, FunctorExceptionPropagatesAndPoolSurvives) {
  struct Bomb {
    struct P {};
    static bool CondEdge(vid_t, vid_t d, eid_t, P&) {
      if (d == 7) throw std::runtime_error("functor bomb");
      return true;
    }
    static void ApplyEdge(vid_t, vid_t, eid_t, P&) {}
  };
  graph::BuildOptions opts;
  opts.symmetrize = true;
  const auto g = graph::BuildCsr(graph::MakeStar(64), opts);
  Bomb::P prob;
  std::vector<vid_t> frontier = {0}, out;
  EXPECT_THROW((core::AdvancePush<Bomb>(par::ThreadPool::Global(), g,
                                        frontier, &out, prob, {})),
               std::runtime_error);
  // The pool is reusable and a clean primitive still works.
  const auto r = Bfs(g, 0);
  EXPECT_EQ(r.depth[63], 1);
}

TEST(ScaleEdgeCaseTest, HugeStarExercisesTwcLargeBin) {
  // One vertex with a 100k neighbor list: the TWC large bin and the
  // equal-work splitter both must chunk a single neighbor list.
  graph::BuildOptions opts;
  opts.symmetrize = true;
  const auto g = graph::BuildCsr(graph::MakeStar(100001), opts);
  for (const auto lb :
       {core::LoadBalance::kTwc, core::LoadBalance::kEqualWork}) {
    BfsOptions o;
    o.load_balance = lb;
    o.direction = core::Direction::kPush;
    const auto r = Bfs(g, 0, o);
    EXPECT_EQ(r.stats.iterations, 2);
    for (vid_t v = 1; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.depth[v], 1);
    }
  }
}

TEST(ScaleEdgeCaseTest, PathGraphExercisesDeepIteration) {
  // 20k iterations of tiny frontiers: per-iteration overhead paths.
  const auto g = Weighted(graph::MakePath(20000));
  const auto r = Bfs(g, 0);
  EXPECT_EQ(r.depth[19999], 19999);
  const auto s = Sssp(g, 0);
  const auto oracle = serial::Dijkstra(g, 0);
  EXPECT_EQ(s.dist, oracle.dist);
}

}  // namespace
}  // namespace gunrock
