// PageRank vs serial power iteration; distribution properties; frontier
// (Gunrock-faithful) mode approximation bounds.
#include <gtest/gtest.h>

#include <numeric>

#include "common/oracle.hpp"
#include "common/topologies.hpp"
#include "gunrock.hpp"

namespace gunrock {
namespace {

using test::TopologyCase;
using test::Undirected;

const std::vector<TopologyCase>& Cases() {
  static const auto* cases = new std::vector<TopologyCase>(
      test::CorpusBuilder()
          .Karate()
          .Cycle(97)
          .Star(64)
          .Rmat(11, 8)
          // Directed graph with dangling vertices (web-like).
          .Directed(true)
          .Rmat(10, 4)
          .Build());
  return *cases;
}

class PrParamTest : public ::testing::TestWithParam<
                        std::tuple<std::size_t, core::LoadBalance>> {};

std::string PrName(const ::testing::TestParamInfo<
                   std::tuple<std::size_t, core::LoadBalance>>& info) {
  std::string name = Cases()[std::get<0>(info.param)].name;
  name += "_";
  name += ToString(std::get<1>(info.param));
  return test::SafeTestName(std::move(name));
}

TEST_P(PrParamTest, MatchesPowerIteration) {
  const auto& [idx, lb] = GetParam();
  const auto& g = Cases()[idx].graph;
  const auto expected = serial::Pagerank(g);

  PagerankOptions opts;
  opts.load_balance = lb;
  const auto got = Pagerank(g, opts);

  test::ExpectScoresNear(expected.rank, got.rank, 1e-7);
}

TEST_P(PrParamTest, RanksSumToOne) {
  const auto& [idx, lb] = GetParam();
  const auto& g = Cases()[idx].graph;
  PagerankOptions opts;
  opts.load_balance = lb;
  const auto got = Pagerank(g, opts);
  const double sum =
      std::accumulate(got.rank.begin(), got.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (const double r : got.rank) EXPECT_GT(r, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, PrParamTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 5),
                       ::testing::Values(core::LoadBalance::kThreadMapped,
                                         core::LoadBalance::kEqualWork,
                                         core::LoadBalance::kAuto)),
    PrName);

TEST(PagerankTest, CycleIsUniform) {
  const auto g = Undirected(graph::MakeCycle(50));
  const auto got = Pagerank(g);
  for (const double r : got.rank) EXPECT_NEAR(r, 1.0 / 50, 1e-10);
}

TEST(PagerankTest, StarHubOutranksLeaves) {
  const auto g = Undirected(graph::MakeStar(64));
  const auto got = Pagerank(g);
  for (std::size_t v = 1; v < 64; ++v) {
    EXPECT_GT(got.rank[0], got.rank[v]);
    EXPECT_NEAR(got.rank[v], got.rank[1], 1e-12);  // leaves identical
  }
}

TEST(PagerankTest, FrontierModeApproximatesExact) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const auto g =
      Undirected(GenerateRmat(p, par::ThreadPool::Global()));
  PagerankOptions exact;
  exact.tolerance = 1e-10;
  const auto ref = Pagerank(g, exact);

  PagerankOptions faithful;
  faithful.frontier_mode = true;
  faithful.tolerance = 1e-8;
  const auto approx = Pagerank(g, faithful);

  // The delta-style frontier shrink trades tail accuracy for work; ranks
  // must stay within a small absolute band of the exact solution.
  test::ExpectScoresNear(ref.rank, approx.rank, 1e-4);
  EXPECT_GT(approx.iterations, 0);
}

TEST(PagerankTest, PullModeMatchesPushAndSerial) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  const auto g = Undirected(GenerateRmat(p, par::ThreadPool::Global()));
  const auto expected = serial::Pagerank(g);
  PagerankOptions pull;
  pull.pull = true;
  const auto got = Pagerank(g, pull);
  test::ExpectScoresNear(expected.rank, got.rank, 1e-7);
}

TEST(PagerankTest, PullModeOnDirectedGraphWithExplicitReverse) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 4;
  const auto g = graph::BuildCsr(
      GenerateRmat(p, par::ThreadPool::Global()));
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  const auto expected = serial::Pagerank(g);
  PagerankOptions pull;
  pull.pull = true;
  pull.reverse = &rg;
  const auto got = Pagerank(g, pull);
  test::ExpectScoresNear(expected.rank, got.rank, 1e-7);
}

TEST(PagerankTest, DanglingMassIsConserved) {
  // Directed star pointing inward: the hub has no out-edges (dangling).
  graph::Coo coo;
  coo.num_vertices = 9;
  for (vid_t v = 1; v < 9; ++v) coo.PushEdge(v, 0);
  const auto g = graph::BuildCsr(coo);
  const auto got = Pagerank(g);
  const double sum =
      std::accumulate(got.rank.begin(), got.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(got.rank[0], got.rank[1]);
}

TEST(PagerankTest, RespectsMaxIterations) {
  const auto g = Undirected(graph::MakeKarate());
  PagerankOptions opts;
  opts.max_iterations = 3;
  opts.tolerance = 0;  // never converges by tolerance
  const auto got = Pagerank(g, opts);
  EXPECT_EQ(got.iterations, 3);
}

TEST(PagerankTest, TimePerIterationNormalization) {
  const auto g = Undirected(graph::MakeKarate());
  const auto got = Pagerank(g);
  EXPECT_GT(got.iterations, 0);
  EXPECT_GE(got.MsPerIteration(), 0.0);
  EXPECT_NEAR(got.MsPerIteration() * got.iterations,
              got.stats.elapsed_ms, 1e-6);
}

}  // namespace
}  // namespace gunrock
